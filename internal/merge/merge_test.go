package merge

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

func ref(n *tree.Node) truechange.NodeRef {
	return truechange.NodeRef{Tag: n.Tag, URI: n.URI}
}

func numLits(v int64) []truechange.LitArg {
	return []truechange.LitArg{{Link: "n", Value: v}}
}

func varLits(name string) []truechange.LitArg {
	return []truechange.LitArg{{Link: "name", Value: name}}
}

// replaceLeaf builds the canonical subtree-replacement script for a leaf
// kid: detach + unload the old leaf, load + attach a replacement with a
// fresh URI from alloc.
func replaceLeaf(parent, old *tree.Node, link sig.Link, newTag sig.Tag, newLits []truechange.LitArg, alloc *uri.Allocator) *truechange.Script {
	var oldLits []truechange.LitArg
	switch old.Tag {
	case exp.Num:
		oldLits = numLits(old.Lits[0].(int64))
	case exp.Var:
		oldLits = varLits(old.Lits[0].(string))
	}
	fresh := truechange.NodeRef{Tag: newTag, URI: alloc.Fresh()}
	return &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: ref(old), Link: link, Parent: ref(parent)},
		truechange.Unload{Node: ref(old), Lits: oldLits},
		truechange.Load{Node: fresh, Lits: newLits},
		truechange.Attach{Node: fresh, Link: link, Parent: ref(parent)},
	}}
}

// patchOnto applies a merged script to a fresh mutable copy of base and
// returns the mtree for structural comparison.
func patchOnto(t *testing.T, sch *sig.Schema, base *tree.Node, s *truechange.Script) *mtree.MTree {
	t.Helper()
	mt, err := mtree.FromTree(sch, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(s); err != nil {
		t.Fatalf("merged script does not apply: %v", err)
	}
	if err := mt.CheckClosed(); err != nil {
		t.Fatalf("merged tree not closed: %v", err)
	}
	return mt
}

func kindSet(cs []Conflict) map[ConflictKind]int {
	out := make(map[ConflictKind]int)
	for _, c := range cs {
		out[c.Kind]++
	}
	return out
}

// TestConflictTaxonomy drives every conflict kind through Scripts with
// hand-written edit scripts over the exp language, asserting the precise
// ConflictError contents under PolicyFail and the patched-tree outcome
// under PolicyOurs and PolicyTheirs.
func TestConflictTaxonomy(t *testing.T) {
	type outcome struct {
		tree      func(b *tree.Builder) *tree.Node // expected tree, nil = must error too
		conflicts int                              // resolved conflicts recorded in the Result
	}
	cases := []struct {
		name string
		// build returns base tree, the two scripts, and the allocator the
		// base was built with (for fresh URIs).
		build func(b *tree.Builder) (*tree.Node, *truechange.Script, *truechange.Script)
		// expected conflict kinds (with multiplicity) under PolicyFail
		kinds map[ConflictKind]int
		// URI selector for the first conflict, applied to the base tree
		conflictURI func(base *tree.Node) uri.URI
		ours        outcome
		theirs      outcome
	}{
		{
			name: "update-update-same-node",
			build: func(b *tree.Builder) (*tree.Node, *truechange.Script, *truechange.Script) {
				base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
				n1 := base.Kids[0]
				sa := &truechange.Script{Edits: []truechange.Edit{
					truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(10)},
				}}
				sb := &truechange.Script{Edits: []truechange.Edit{
					truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(20)},
				}}
				return base, sa, sb
			},
			kinds:       map[ConflictKind]int{ConflictUpdateUpdate: 1},
			conflictURI: func(base *tree.Node) uri.URI { return base.Kids[0].URI },
			ours: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 10), b.MustN(exp.Num, 2))
			}, conflicts: 1},
			theirs: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 20), b.MustN(exp.Num, 2))
			}, conflicts: 1},
		},
		{
			name: "update-vs-unload",
			build: func(b *tree.Builder) (*tree.Node, *truechange.Script, *truechange.Script) {
				base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
				n1 := base.Kids[0]
				sa := &truechange.Script{Edits: []truechange.Edit{
					truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(10)},
				}}
				sb := replaceLeaf(base, n1, "e1", exp.Var, varLits("x"), b.Alloc())
				return base, sa, sb
			},
			kinds:       map[ConflictKind]int{ConflictUpdateDelete: 1},
			conflictURI: func(base *tree.Node) uri.URI { return base.Kids[0].URI },
			ours: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 10), b.MustN(exp.Num, 2))
			}, conflicts: 1},
			theirs: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Var, "x"), b.MustN(exp.Num, 2))
			}, conflicts: 1},
		},
		{
			name: "attach-into-unloaded-subtree",
			build: func(b *tree.Builder) (*tree.Node, *truechange.Script, *truechange.Script) {
				inner := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
				base := b.MustN(exp.Add, inner, b.MustN(exp.Num, 3))
				// ours replaces a leaf inside the inner subtree
				sa := replaceLeaf(inner, inner.Kids[0], "e1", exp.Num, numLits(9), b.Alloc())
				// theirs deletes the whole inner subtree
				fresh := truechange.NodeRef{Tag: exp.Num, URI: b.Alloc().Fresh()}
				sb := &truechange.Script{Edits: []truechange.Edit{
					truechange.Detach{Node: ref(inner), Link: "e1", Parent: ref(base)},
					truechange.Unload{Node: ref(inner), Kids: []truechange.KidArg{
						{Link: "e1", URI: inner.Kids[0].URI}, {Link: "e2", URI: inner.Kids[1].URI},
					}},
					truechange.Unload{Node: ref(inner.Kids[0]), Lits: numLits(1)},
					truechange.Unload{Node: ref(inner.Kids[1]), Lits: numLits(2)},
					truechange.Load{Node: fresh, Lits: numLits(7)},
					truechange.Attach{Node: fresh, Link: "e1", Parent: ref(base)},
				}}
				return base, sa, sb
			},
			kinds: map[ConflictKind]int{ConflictDeleteEdit: 1, ConflictDeleteDelete: 1},
			ours: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Add, b.MustN(exp.Num, 9), b.MustN(exp.Num, 2)), b.MustN(exp.Num, 3))
			}, conflicts: 2},
			theirs: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 7), b.MustN(exp.Num, 3))
			}, conflicts: 2},
		},
		{
			name: "both-attach-same-slot",
			build: func(b *tree.Builder) (*tree.Node, *truechange.Script, *truechange.Script) {
				base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
				n2 := base.Kids[1]
				sa := replaceLeaf(base, n2, "e2", exp.Var, varLits("a"), b.Alloc())
				sb := replaceLeaf(base, n2, "e2", exp.Var, varLits("b"), b.Alloc())
				return base, sa, sb
			},
			kinds:       map[ConflictKind]int{ConflictSlot: 1, ConflictDeleteDelete: 1},
			conflictURI: func(base *tree.Node) uri.URI { return base.URI },
			ours: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Var, "a"))
			}, conflicts: 2},
			theirs: outcome{tree: func(b *tree.Builder) *tree.Node {
				return b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Var, "b"))
			}, conflicts: 2},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := exp.NewBuilder()
			base, sa, sb := tc.build(b)

			// PolicyFail: the conflict must be reported, typed, and complete.
			_, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail})
			if err == nil {
				t.Fatal("PolicyFail: conflicting merge succeeded")
			}
			if !errors.Is(err, derrors.ErrMergeConflict) {
				t.Fatalf("PolicyFail error %v is not ErrMergeConflict", err)
			}
			var ce *ConflictError
			if !errors.As(err, &ce) {
				t.Fatalf("PolicyFail error %T does not carry *ConflictError", err)
			}
			if got := kindSet(ce.Conflicts); len(got) != len(tc.kinds) || func() bool {
				for k, n := range tc.kinds {
					if got[k] != n {
						return true
					}
				}
				return false
			}() {
				t.Fatalf("conflict kinds = %v, want %v (conflicts: %v)", kindSet(ce.Conflicts), tc.kinds, ce.Conflicts)
			}
			for _, c := range ce.Conflicts {
				if len(c.Ours) == 0 || len(c.Theirs) == 0 {
					t.Fatalf("conflict %v is missing a competing edit group", c)
				}
				if c.Resolution != PolicyFail {
					t.Fatalf("conflict %v resolution = %v, want fail", c, c.Resolution)
				}
				if (c.Kind == ConflictSlot || c.Kind == ConflictDeleteEdit) && c.Slot == nil {
					t.Fatalf("conflict %v has no contended slot", c)
				}
			}
			if tc.conflictURI != nil {
				want := tc.conflictURI(base)
				found := false
				for _, c := range ce.Conflicts {
					if c.URI == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("no conflict names URI %s: %v", want, ce.Conflicts)
				}
			}

			// PolicyOurs / PolicyTheirs: merge succeeds and patches to the
			// expected tree; resolved conflicts are recorded, not dropped.
			for _, pc := range []struct {
				policy Policy
				want   outcome
			}{{PolicyOurs, tc.ours}, {PolicyTheirs, tc.theirs}} {
				res, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: pc.policy})
				if err != nil {
					t.Fatalf("%v: %v", pc.policy, err)
				}
				if len(res.Conflicts) != pc.want.conflicts {
					t.Fatalf("%v: %d resolved conflicts recorded, want %d: %v",
						pc.policy, len(res.Conflicts), pc.want.conflicts, res.Conflicts)
				}
				for _, c := range res.Conflicts {
					if c.Resolution != pc.policy {
						t.Fatalf("%v: conflict %v records resolution %v", pc.policy, c, c.Resolution)
					}
				}
				mt := patchOnto(t, b.Schema(), base, res.Script)
				wb := exp.NewBuilder()
				want := pc.want.tree(wb)
				if !mt.EqualTree(want) {
					t.Fatalf("%v: merged tree mismatch:\n got: %s\nwant: %s", pc.policy, mt, want)
				}
			}
		})
	}
}

// TestMergeConvergent checks that both sides making the same change — a
// replacement with identical content but different fresh URIs — merges
// cleanly under PolicyFail with the pair auto-resolved to one copy.
func TestMergeConvergent(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	n2 := base.Kids[1]
	sa := replaceLeaf(base, n2, "e2", exp.Var, varLits("same"), b.Alloc())
	sb := replaceLeaf(base, n2, "e2", exp.Var, varLits("same"), b.Alloc())

	res, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail})
	if err != nil {
		t.Fatalf("convergent merge failed: %v", err)
	}
	if res.Stats.AutoResolved != 1 || res.Stats.Conflicts != 0 {
		t.Fatalf("stats = %+v, want 1 auto-resolved, 0 conflicts", res.Stats)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("convergent pair reported as conflicts: %v", res.Conflicts)
	}
	mt := patchOnto(t, b.Schema(), base, res.Script)
	wb := exp.NewBuilder()
	want := wb.MustN(exp.Add, wb.MustN(exp.Num, 1), wb.MustN(exp.Var, "same"))
	if !mt.EqualTree(want) {
		t.Fatalf("merged tree mismatch:\n got: %s\nwant: %s", mt, want)
	}
}

// TestMergeDisjoint checks the clean path: edits to different slots merge
// with no conflicts and the merged tree carries both changes; merging in
// either argument order patches to the same tree (commutativity).
func TestMergeDisjoint(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	sa := replaceLeaf(base, base.Kids[0], "e1", exp.Var, varLits("a"), b.Alloc())
	sb := replaceLeaf(base, base.Kids[1], "e2", exp.Var, varLits("b"), b.Alloc())

	wb := exp.NewBuilder()
	want := wb.MustN(exp.Add, wb.MustN(exp.Var, "a"), wb.MustN(exp.Var, "b"))

	for _, order := range []struct {
		name   string
		sa, sb *truechange.Script
	}{{"A,B", sa, sb}, {"B,A", sb, sa}} {
		res, err := Scripts(b.Schema(), base, order.sa, order.sb, Options{Policy: PolicyFail})
		if err != nil {
			t.Fatalf("order %s: %v", order.name, err)
		}
		if res.Stats.Conflicts != 0 || res.Stats.AutoResolved != 0 || res.Stats.DroppedEdits != 0 {
			t.Fatalf("order %s: stats = %+v, want all-clean", order.name, res.Stats)
		}
		if got := res.Script.EditCount(); got != sa.EditCount()+sb.EditCount() {
			t.Fatalf("order %s: merged script has %d edits, want %d", order.name, got, sa.EditCount()+sb.EditCount())
		}
		mt := patchOnto(t, b.Schema(), base, res.Script)
		if !mt.EqualTree(want) {
			t.Fatalf("order %s: merged tree mismatch:\n got: %s\nwant: %s", order.name, mt, want)
		}
	}
}

// TestMergeCrossMoveCycle checks the one unsoundness the linear type
// system cannot see: each side moves a subtree below the other's. Both
// scripts are independently valid, the union typechecks, but patching
// orphans both subtrees; the post-patch closure check must turn this into
// a ConflictCycle, not a silent success.
func TestMergeCrossMoveCycle(t *testing.T) {
	b := exp.NewBuilder()
	x := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	y := b.MustN(exp.Add, b.MustN(exp.Num, 3), b.MustN(exp.Num, 4))
	base := b.MustN(exp.Add, x, y)

	// ours: move y under x.e2 (deleting Num 2), refill root.e2 with Num 5
	freshA := truechange.NodeRef{Tag: exp.Num, URI: b.Alloc().Fresh()}
	sa := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: ref(y), Link: "e2", Parent: ref(base)},
		truechange.Detach{Node: ref(x.Kids[1]), Link: "e2", Parent: ref(x)},
		truechange.Unload{Node: ref(x.Kids[1]), Lits: numLits(2)},
		truechange.Attach{Node: ref(y), Link: "e2", Parent: ref(x)},
		truechange.Load{Node: freshA, Lits: numLits(5)},
		truechange.Attach{Node: freshA, Link: "e2", Parent: ref(base)},
	}}
	// theirs: move x under y.e1 (deleting Num 3), refill root.e1 with Num 6
	freshB := truechange.NodeRef{Tag: exp.Num, URI: b.Alloc().Fresh()}
	sb := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: ref(x), Link: "e1", Parent: ref(base)},
		truechange.Detach{Node: ref(y.Kids[0]), Link: "e1", Parent: ref(y)},
		truechange.Unload{Node: ref(y.Kids[0]), Lits: numLits(3)},
		truechange.Attach{Node: ref(x), Link: "e1", Parent: ref(y)},
		truechange.Load{Node: freshB, Lits: numLits(6)},
		truechange.Attach{Node: freshB, Link: "e1", Parent: ref(base)},
	}}

	_, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail})
	if err == nil {
		t.Fatal("cross-move cycle merged silently")
	}
	if !errors.Is(err, derrors.ErrMergeConflict) {
		t.Fatalf("error %v is not ErrMergeConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) || len(ce.Conflicts) == 0 {
		t.Fatalf("error %v carries no conflicts", err)
	}
	if ce.Conflicts[0].Kind != ConflictCycle {
		t.Fatalf("conflict kind = %v, want move-cycle", ce.Conflicts[0].Kind)
	}

	// PolicyOurs keeps ours' move: y sits under x, root.e2 refilled.
	res, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyOurs})
	if err != nil {
		t.Fatalf("PolicyOurs: %v", err)
	}
	mt := patchOnto(t, b.Schema(), base, res.Script)
	wb := exp.NewBuilder()
	want := wb.MustN(exp.Add,
		wb.MustN(exp.Add, wb.MustN(exp.Num, 1), wb.MustN(exp.Add, wb.MustN(exp.Num, 3), wb.MustN(exp.Num, 4))),
		wb.MustN(exp.Num, 5))
	if !mt.EqualTree(want) {
		t.Fatalf("PolicyOurs merged tree mismatch:\n got: %s\nwant: %s", mt, want)
	}
}

// TestMergeFreshURICollision checks the script-level entry point renames
// colliding fresh load URIs apart: two independently produced scripts that
// load different content under the same fresh URI must still merge into a
// tree carrying both insertions.
func TestMergeFreshURICollision(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	collide := b.Alloc().Peek() + 1 // both sides will use this URI fresh
	allocA := uri.NewAllocator()
	allocA.Reserve(collide - 1)
	allocB := uri.NewAllocator()
	allocB.Reserve(collide - 1)
	sa := replaceLeaf(base, base.Kids[0], "e1", exp.Var, varLits("a"), allocA)
	sb := replaceLeaf(base, base.Kids[1], "e2", exp.Var, varLits("b"), allocB)

	res, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail})
	if err != nil {
		t.Fatalf("colliding-URI merge failed: %v", err)
	}
	if res.Stats.Conflicts != 0 {
		t.Fatalf("disjoint edits reported as conflicts: %+v", res.Stats)
	}
	mt := patchOnto(t, b.Schema(), base, res.Script)
	wb := exp.NewBuilder()
	want := wb.MustN(exp.Add, wb.MustN(exp.Var, "a"), wb.MustN(exp.Var, "b"))
	if !mt.EqualTree(want) {
		t.Fatalf("merged tree mismatch:\n got: %s\nwant: %s", mt, want)
	}
}

// TestMergeInputValidation checks ill-typed and non-compliant inputs are
// rejected up front with the established sentinels.
func TestMergeInputValidation(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	ok := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: ref(base.Kids[0]), Old: numLits(1), New: numLits(10)},
	}}

	if _, err := Scripts(b.Schema(), nil, ok, ok, Options{}); !errors.Is(err, derrors.ErrNilTree) {
		t.Fatalf("nil base: %v, want ErrNilTree", err)
	}
	if _, err := Scripts(b.Schema(), base, nil, ok, Options{}); err == nil {
		t.Fatal("nil script accepted")
	}

	// Ill-typed: a dangling Detach leaks a root.
	illTyped := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: ref(base.Kids[0]), Link: "e1", Parent: ref(base)},
	}}
	if _, err := Scripts(b.Schema(), base, illTyped, ok, Options{}); !errors.Is(err, derrors.ErrIllTyped) {
		t.Fatalf("ill-typed ours: %v, want ErrIllTyped", err)
	}

	// Well-typed but non-compliant: updates a URI the base doesn't have.
	ghost := truechange.NodeRef{Tag: exp.Num, URI: b.Alloc().Fresh()}
	nonCompliant := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: ghost, Old: numLits(1), New: numLits(2)},
	}}
	if _, err := Scripts(b.Schema(), base, ok, nonCompliant, Options{}); !errors.Is(err, derrors.ErrNonCompliantScript) {
		t.Fatalf("non-compliant theirs: %v, want ErrNonCompliantScript", err)
	}
}

// TestTrees drives the tree-level entry point end to end through truediff:
// a disjoint pair merges clean, a competing pair conflicts under
// PolicyFail and resolves under ours/theirs.
func TestTrees(t *testing.T) {
	sch := exp.Schema()
	ctx := context.Background()

	t.Run("disjoint", func(t *testing.T) {
		b := exp.NewBuilder()
		base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
		ob := exp.NewBuilder()
		ours := ob.MustN(exp.Add, ob.MustN(exp.Num, 10), ob.MustN(exp.Num, 2))
		tb := exp.NewBuilder()
		theirs := tb.MustN(exp.Add, tb.MustN(exp.Num, 1), tb.MustN(exp.Num, 20))

		res, err := Trees(ctx, sch, base, ours, theirs, nil, Options{Policy: PolicyFail})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Conflicts != 0 {
			t.Fatalf("disjoint tree merge reported conflicts: %+v", res.Stats)
		}
		mt := patchOnto(t, sch, base, res.Script)
		wb := exp.NewBuilder()
		want := wb.MustN(exp.Add, wb.MustN(exp.Num, 10), wb.MustN(exp.Num, 20))
		if !mt.EqualTree(want) {
			t.Fatalf("merged tree mismatch:\n got: %s\nwant: %s", mt, want)
		}
	})

	t.Run("competing", func(t *testing.T) {
		b := exp.NewBuilder()
		base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
		ob := exp.NewBuilder()
		ours := ob.MustN(exp.Add, ob.MustN(exp.Var, "a"), ob.MustN(exp.Num, 2))
		tb := exp.NewBuilder()
		theirs := tb.MustN(exp.Add, tb.MustN(exp.Var, "b"), tb.MustN(exp.Num, 2))

		_, err := Trees(ctx, sch, base, ours, theirs, nil, Options{Policy: PolicyFail})
		if !errors.Is(err, derrors.ErrMergeConflict) {
			t.Fatalf("competing tree merge: %v, want ErrMergeConflict", err)
		}

		res, err := Trees(ctx, sch, base, ours, theirs, nil, Options{Policy: PolicyTheirs})
		if err != nil {
			t.Fatalf("PolicyTheirs: %v", err)
		}
		mt := patchOnto(t, sch, base, res.Script)
		if !mt.EqualTree(theirs) {
			t.Fatalf("PolicyTheirs merged tree mismatch:\n got: %s\nwant: %s", mt, theirs)
		}
	})

	t.Run("convergent", func(t *testing.T) {
		b := exp.NewBuilder()
		base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
		ob := exp.NewBuilder()
		ours := ob.MustN(exp.Add, ob.MustN(exp.Var, "same"), ob.MustN(exp.Num, 2))
		tb := exp.NewBuilder()
		theirs := tb.MustN(exp.Add, tb.MustN(exp.Var, "same"), tb.MustN(exp.Num, 2))

		res, err := Trees(ctx, sch, base, ours, theirs, nil, Options{Policy: PolicyFail})
		if err != nil {
			t.Fatalf("convergent tree merge: %v", err)
		}
		if res.Stats.AutoResolved == 0 {
			t.Fatalf("convergent change not auto-resolved: %+v", res.Stats)
		}
		mt := patchOnto(t, sch, base, res.Script)
		if !mt.EqualTree(ours) {
			t.Fatalf("merged tree mismatch:\n got: %s\nwant: %s", mt, ours)
		}
	})
}

// TestApplyRollback checks Apply's accept hook: a rejected merge is rolled
// back exactly via the inverse script.
func TestApplyRollback(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	sa := replaceLeaf(base, base.Kids[0], "e1", exp.Var, varLits("a"), b.Alloc())
	sb := replaceLeaf(base, base.Kids[1], "e2", exp.Var, varLits("b"), b.Alloc())
	res, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail})
	if err != nil {
		t.Fatal(err)
	}

	mt, err := mtree.FromTree(b.Schema(), base)
	if err != nil {
		t.Fatal(err)
	}
	before := mt.String()

	reject := errors.New("not today")
	err = Apply(mt, res, func(*mtree.MTree) error { return reject })
	if !errors.Is(err, reject) {
		t.Fatalf("Apply did not surface the rejection: %v", err)
	}
	if after := mt.String(); after != before {
		t.Fatalf("rejection did not roll back exactly:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// Accepted applies commit.
	if err := Apply(mt, res, nil); err != nil {
		t.Fatal(err)
	}
	wb := exp.NewBuilder()
	want := wb.MustN(exp.Add, wb.MustN(exp.Var, "a"), wb.MustN(exp.Var, "b"))
	if !mt.EqualTree(want) {
		t.Fatalf("accepted apply mismatch:\n got: %s\nwant: %s", mt, want)
	}
}

// TestMergeCounters checks the process-wide telemetry counters move with
// merges, conflicts, and auto-resolutions.
func TestMergeCounters(t *testing.T) {
	b := exp.NewBuilder()
	base := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	n1 := base.Kids[0]
	sa := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(10)},
	}}
	sb := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(20)},
	}}

	m0, c0, a0 := Merges(), Conflicts(), AutoResolved()
	if _, err := Scripts(b.Schema(), base, sa, sb, Options{Policy: PolicyFail}); err == nil {
		t.Fatal("expected conflict")
	}
	if Merges() != m0+1 || Conflicts() != c0+1 {
		t.Fatalf("counters after conflict: merges %d→%d, conflicts %d→%d", m0, Merges(), c0, Conflicts())
	}
	sbSame := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: ref(n1), Old: numLits(1), New: numLits(10)},
	}}
	if _, err := Scripts(b.Schema(), base, sa, sbSame, Options{Policy: PolicyFail}); err != nil {
		t.Fatal(err)
	}
	if AutoResolved() != a0+1 {
		t.Fatalf("auto-resolved counter did not move: %d→%d", a0, AutoResolved())
	}
}

// TestPolicyRoundTrip pins Policy parsing and formatting for the CLI.
func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyFail, PolicyOurs, PolicyTheirs} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus input")
	}
	for k := ConflictSlot; k <= ConflictCycle; k++ {
		if s := k.String(); s == "" || s == fmt.Sprintf("kind(%d)", int(k)) {
			t.Fatalf("ConflictKind %d has no name", int(k))
		}
	}
}
