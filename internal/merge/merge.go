// Package merge implements typed three-way merge on truechange edit
// scripts. Given an ancestor tree O and two divergent descendants A and B,
// it diffs O→A and O→B with truediff and merges the two scripts into one
// well-typed script over O. Conflict detection is a typing question, not a
// tree heuristic: the linear roots/slots discipline of the truechange type
// system (paper Fig. 3) partitions each script into change groups — the
// connected components of edits sharing a typing resource — and two groups
// from opposite sides conflict exactly when their claims on the base tree
// intersect (same slot emptied, same node updated, a node one side edits
// inside a subtree the other deletes). Groups that make the *same* change
// on both sides (up to renaming of freshly loaded URIs) are convergent and
// auto-resolve to a single copy.
//
// The merged script is verified end to end before it is returned: it must
// typecheck closed-to-closed (truechange.WellTyped), apply to the ancestor
// (mtree.Patch, transactional), and leave the patched tree closed and
// reachable (MTree.CheckClosed) — the last check catches cross-script move
// cycles, which are well-typed in the linear system but orphan both moved
// subtrees. Rejected merges and rejected applies roll back exactly via
// truechange.Invert + the transactional patch.
package merge

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/derrors"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Policy selects what happens to conflicting change groups.
type Policy int

const (
	// PolicyFail reports conflicts as a *ConflictError and merges nothing.
	PolicyFail Policy = iota
	// PolicyOurs drops theirs' side of every conflict and keeps ours'.
	PolicyOurs
	// PolicyTheirs drops ours' side of every conflict and keeps theirs'.
	PolicyTheirs
)

func (p Policy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyOurs:
		return "ours"
	case PolicyTheirs:
		return "theirs"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses "fail", "ours", or "theirs".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail":
		return PolicyFail, nil
	case "ours":
		return PolicyOurs, nil
	case "theirs":
		return PolicyTheirs, nil
	}
	return PolicyFail, fmt.Errorf("merge: unknown policy %q (want fail, ours, or theirs)", s)
}

// ConflictKind classifies a conflict by the typing resource contended.
type ConflictKind int

const (
	// ConflictSlot: both sides empty and refill the same child slot —
	// competing attaches, subtree replacements, or moves into one slot.
	ConflictSlot ConflictKind = iota
	// ConflictUpdateUpdate: both sides rewrite the same node's literals.
	ConflictUpdateUpdate
	// ConflictUpdateDelete: one side updates a node the other unloads.
	ConflictUpdateDelete
	// ConflictDeleteEdit: one side edits a slot of a node (attach, detach,
	// move) inside a subtree the other side deletes.
	ConflictDeleteEdit
	// ConflictDeleteDelete: both sides delete the same base node with
	// structurally different change groups (identical deletions converge
	// and are auto-resolved instead).
	ConflictDeleteDelete
	// ConflictCycle: the two sides move subtrees under each other (A moves
	// x below y while B moves y below x). Each script alone is well-typed
	// and so is their union, but patching orphans both subtrees; this is
	// detected by the post-patch reachability check.
	ConflictCycle
)

func (k ConflictKind) String() string {
	switch k {
	case ConflictSlot:
		return "slot/slot"
	case ConflictUpdateUpdate:
		return "update/update"
	case ConflictUpdateDelete:
		return "update/delete"
	case ConflictDeleteEdit:
		return "delete/edit"
	case ConflictDeleteDelete:
		return "delete/delete"
	case ConflictCycle:
		return "move-cycle"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Conflict is one contended typing resource and the two change groups
// fighting over it.
type Conflict struct {
	Kind ConflictKind
	// URI is the contended node: the slot's parent for ConflictSlot and
	// ConflictDeleteEdit, the updated/deleted node otherwise, and the
	// orphaned attach target for ConflictCycle.
	URI uri.URI
	// Slot is the contended child slot, when the conflict is about one
	// (ConflictSlot, ConflictDeleteEdit); nil otherwise.
	Slot *truechange.Slot
	// Ours and Theirs are the two competing change groups, each a
	// well-typed excerpt of its script in original edit order.
	Ours   []truechange.Edit
	Theirs []truechange.Edit
	// Resolution records how the conflict was settled: PolicyFail if it
	// was reported as an error, PolicyOurs/PolicyTheirs if a policy
	// dropped one side.
	Resolution Policy
}

func (c Conflict) String() string {
	at := fmt.Sprintf("node %s", c.URI)
	if c.Slot != nil {
		at = fmt.Sprintf("slot %s", *c.Slot)
	}
	return fmt.Sprintf("%s conflict at %s (ours %d edits, theirs %d edits)",
		c.Kind, at, len(c.Ours), len(c.Theirs))
}

// ConflictError reports a merge rejected under PolicyFail. It unwraps to
// derrors.ErrMergeConflict.
type ConflictError struct {
	Conflicts []Conflict
}

func (e *ConflictError) Error() string {
	if len(e.Conflicts) == 1 {
		return fmt.Sprintf("%v: %v", derrors.ErrMergeConflict, e.Conflicts[0])
	}
	return fmt.Sprintf("%v: %d conflicts, first: %v",
		derrors.ErrMergeConflict, len(e.Conflicts), e.Conflicts[0])
}

func (e *ConflictError) Unwrap() error { return derrors.ErrMergeConflict }

// Stats summarizes a merge.
type Stats struct {
	OursEdits    int // edit count of diff(O, A)
	TheirsEdits  int // edit count of diff(O, B)
	MergedEdits  int // edit count of the merged script
	OursGroups   int // change groups in ours
	TheirsGroups int // change groups in theirs
	Conflicts    int // conflicts detected (after convergence analysis)
	AutoResolved int // convergent group pairs collapsed to one copy
	DroppedEdits int // edits dropped by the resolution policy
}

// Result is a successful merge: a well-typed script over the ancestor,
// the conflicts a policy resolved (empty under PolicyFail, which instead
// errors on any conflict), and summary statistics.
type Result struct {
	Script    *truechange.Script
	Conflicts []Conflict
	Stats     Stats
}

// Options configures a merge.
type Options struct {
	// Policy picks a side for conflicting groups; default PolicyFail.
	Policy Policy
	// Diff configures the two underlying O→A and O→B diffs (Trees only).
	Diff truediff.Options
}

// Process-wide merge telemetry, mirroring mtree's rollback counter: the
// engine's Snapshot and the Prometheus exposition read these accessors.
var (
	mergesTotal       atomic.Uint64
	conflictsTotal    atomic.Uint64
	autoResolvedTotal atomic.Uint64
)

// Merges returns the process-wide count of completed merge attempts
// (successful or conflict-rejected; input-validation failures don't count).
func Merges() uint64 { return mergesTotal.Load() }

// Conflicts returns the process-wide count of conflicts detected across
// all merges, whether reported as errors or resolved by a policy.
func Conflicts() uint64 { return conflictsTotal.Load() }

// AutoResolved returns the process-wide count of convergent group pairs —
// both sides made the same change — collapsed to a single copy.
func AutoResolved() uint64 { return autoResolvedTotal.Load() }

// Trees three-way merges at the tree level: it diffs base→ours and
// base→theirs through one shared URI allocator (so the two scripts' fresh
// URIs are disjoint by construction) and merges the scripts. A nil alloc
// derives one from the three trees.
func Trees(ctx context.Context, sch *sig.Schema, base, ours, theirs *tree.Node, alloc *uri.Allocator, opt Options) (*Result, error) {
	if base == nil || ours == nil || theirs == nil {
		return nil, fmt.Errorf("merge: %w", derrors.ErrNilTree)
	}
	if alloc == nil {
		alloc = uri.NewAllocator()
		for _, t := range []*tree.Node{base, ours, theirs} {
			tree.Walk(t, func(n *tree.Node) { alloc.Reserve(n.URI) })
		}
	}
	d := truediff.NewWithOptions(sch, opt.Diff)
	ra, err := d.DiffCtx(ctx, base, ours, alloc)
	if err != nil {
		return nil, fmt.Errorf("merge: diff base→ours: %w", err)
	}
	rb, err := d.DiffCtx(ctx, base, theirs, alloc)
	if err != nil {
		return nil, fmt.Errorf("merge: diff base→theirs: %w", err)
	}
	return merge(sch, base, ra.Script, rb.Script, opt)
}

// Scripts three-way merges at the script level: sa and sb must each be
// well-typed closed-to-closed and comply with the base tree. Fresh URIs
// the two scripts happen to share are renamed apart on theirs' side before
// merging.
func Scripts(sch *sig.Schema, base *tree.Node, sa, sb *truechange.Script, opt Options) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("merge: %w", derrors.ErrNilTree)
	}
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("merge: nil input script")
	}
	for side, s := range map[string]*truechange.Script{"ours": sa, "theirs": sb} {
		if err := truechange.WellTyped(sch, s); err != nil {
			return nil, fmt.Errorf("merge: %s script: %w", side, err)
		}
		mt, err := mtree.FromTree(sch, base)
		if err != nil {
			return nil, fmt.Errorf("merge: base tree: %w", err)
		}
		if err := mt.Comply(s); err != nil {
			return nil, fmt.Errorf("merge: %s script: %w", side, err)
		}
	}
	sb = remapFreshCollisions(base, sa, sb)
	return merge(sch, base, sa, sb, opt)
}

// merge is the shared core: claim analysis, conflict detection and
// resolution, script construction, and end-to-end verification.
func merge(sch *sig.Schema, base *tree.Node, sa, sb *truechange.Script, opt Options) (*Result, error) {
	ga := computeGroups(sa)
	gb := computeGroups(sb)
	stats := Stats{
		OursEdits:    sa.EditCount(),
		TheirsEdits:  sb.EditCount(),
		OursGroups:   len(ga),
		TheirsGroups: len(gb),
	}

	raw := detectConflicts(ga, indexClaims(gb))

	// Convergence pass: a conflicting pair whose two groups are the same
	// change (up to fresh-URI renaming) is not a disagreement — keep ours'
	// copy, drop theirs'. Deduplicate per pair: two groups can contend
	// several resources at once.
	type pairKey struct{ a, b int }
	seenPair := make(map[pairKey]bool)
	autoResolved := 0
	for _, rc := range raw {
		k := pairKey{rc.a.id, rc.b.id}
		if seenPair[k] {
			continue
		}
		seenPair[k] = true
		if !rc.a.dead && !rc.b.dead && groupsEquivalent(rc.a, rc.b) {
			rc.b.dead = true
			autoResolved++
		}
	}

	// Live conflicts: raw records whose both groups survived convergence.
	// Deduplicate per (pair, kind, resource) — detection can report the
	// same intersection from both directions.
	type confKey struct {
		a, b int
		kind ConflictKind
		uri  uri.URI
		slot truechange.Slot
	}
	seenConf := make(map[confKey]bool)
	var live []rawConflict
	for _, rc := range raw {
		if rc.a.dead || rc.b.dead {
			continue
		}
		k := confKey{a: rc.a.id, b: rc.b.id, kind: rc.kind, uri: rc.uri}
		if rc.slot != nil {
			k.slot = *rc.slot
		}
		if seenConf[k] {
			continue
		}
		seenConf[k] = true
		live = append(live, rc)
	}

	mergesTotal.Add(1)
	conflictsTotal.Add(uint64(len(live)))
	autoResolvedTotal.Add(uint64(autoResolved))
	stats.AutoResolved = autoResolved
	stats.Conflicts = len(live)

	var resolved []Conflict
	if len(live) > 0 {
		if opt.Policy == PolicyFail {
			return nil, &ConflictError{Conflicts: conflicts(live, PolicyFail)}
		}
		// Drop the losing side of every live conflict, whole groups at a
		// time — dropping individual edits would leak typing resources.
		for _, rc := range live {
			switch opt.Policy {
			case PolicyOurs:
				rc.b.dead = true
			case PolicyTheirs:
				rc.a.dead = true
			}
		}
		resolved = conflicts(live, opt.Policy)
	}

	merged := buildScript(sa, ga, sb, gb)
	stats.MergedEdits = merged.EditCount()
	stats.DroppedEdits = stats.OursEdits + stats.TheirsEdits - stats.MergedEdits

	// Verification loop. A well-typed union can still be unsound in one
	// way the linear system cannot see: cross-script move cycles, which
	// orphan the moved subtrees. Patch transactionally and check
	// reachability; on a cycle, report or drop the losing side's groups
	// and rebuild. Each iteration kills at least one group, so the loop
	// is bounded by the group count.
	for iter := 0; ; iter++ {
		if iter > len(ga)+len(gb) {
			return nil, fmt.Errorf("merge: internal error: verification did not converge")
		}
		if err := truechange.WellTyped(sch, merged); err != nil {
			return nil, fmt.Errorf("merge: merged script: %w", err)
		}
		mt, err := mtree.FromTree(sch, base)
		if err != nil {
			return nil, fmt.Errorf("merge: base tree: %w", err)
		}
		if err := mt.Patch(merged); err != nil {
			return nil, fmt.Errorf("merge: merged script does not apply: %w", err)
		}
		closedErr := mt.CheckClosed()
		if closedErr == nil {
			break
		}
		cycle := findCycleConflicts(mt, ga, gb)
		if len(cycle) == 0 {
			// Unreachability we cannot attribute to a cross-script pair
			// would mean a single validated input script orphans nodes;
			// refuse rather than return an unsound merge.
			return nil, fmt.Errorf("merge: merged tree is not closed: %w", closedErr)
		}
		conflictsTotal.Add(uint64(len(cycle)))
		stats.Conflicts += len(cycle)
		if opt.Policy == PolicyFail {
			return nil, &ConflictError{Conflicts: append(conflicts(live, PolicyFail), conflicts(cycle, PolicyFail)...)}
		}
		for _, rc := range cycle {
			switch opt.Policy {
			case PolicyOurs:
				rc.b.dead = true
			case PolicyTheirs:
				rc.a.dead = true
			}
		}
		resolved = append(resolved, conflicts(cycle, opt.Policy)...)
		merged = buildScript(sa, ga, sb, gb)
		stats.MergedEdits = merged.EditCount()
		stats.DroppedEdits = stats.OursEdits + stats.TheirsEdits - stats.MergedEdits
	}

	return &Result{Script: merged, Conflicts: resolved, Stats: stats}, nil
}

// conflicts converts raw detection records into the exported form.
func conflicts(raw []rawConflict, res Policy) []Conflict {
	out := make([]Conflict, len(raw))
	for i, rc := range raw {
		out[i] = Conflict{
			Kind:       rc.kind,
			URI:        rc.uri,
			Slot:       rc.slot,
			Ours:       append([]truechange.Edit(nil), rc.a.edits...),
			Theirs:     append([]truechange.Edit(nil), rc.b.edits...),
			Resolution: res,
		}
	}
	return out
}

// buildScript concatenates the surviving edits of both scripts. truediff
// emits scripts with all negative edits (Detach/Unload) before all
// positive ones; when both survivors keep that shape the merged script is
// ordered [negA, negB, posA, posB], which preserves the "negative edits
// free resources before positive edits consume them" discipline across
// the two scripts. Otherwise the scripts are concatenated whole — claims
// are disjoint, so ours' edits cannot invalidate theirs' prefix.
func buildScript(sa *truechange.Script, ga []*group, sb *truechange.Script, gb []*group) *truechange.Script {
	keepA := keptEdits(sa, ga)
	keepB := keptEdits(sb, gb)
	if negBeforePos(keepA) && negBeforePos(keepB) {
		na, pa := splitNegPos(keepA)
		nb, pb := splitNegPos(keepB)
		out := &truechange.Script{Edits: make([]truechange.Edit, 0, len(keepA)+len(keepB))}
		out.Edits = append(out.Edits, na...)
		out.Edits = append(out.Edits, nb...)
		out.Edits = append(out.Edits, pa...)
		out.Edits = append(out.Edits, pb...)
		return out
	}
	return &truechange.Script{Edits: append(append([]truechange.Edit(nil), keepA...), keepB...)}
}

// keptEdits returns the script's edits minus dead groups, in original
// script order.
func keptEdits(s *truechange.Script, groups []*group) []truechange.Edit {
	drop := make(map[int]bool)
	for _, g := range groups {
		if g.dead {
			for _, i := range g.indices {
				drop[i] = true
			}
		}
	}
	if len(drop) == 0 {
		return append([]truechange.Edit(nil), s.Edits...)
	}
	out := make([]truechange.Edit, 0, len(s.Edits)-len(drop))
	for i, e := range s.Edits {
		if !drop[i] {
			out = append(out, e)
		}
	}
	return out
}

func negBeforePos(edits []truechange.Edit) bool {
	seenPos := false
	for _, e := range edits {
		if e.Negative() {
			if seenPos {
				return false
			}
		} else {
			seenPos = true
		}
	}
	return true
}

func splitNegPos(edits []truechange.Edit) (neg, pos []truechange.Edit) {
	for _, e := range edits {
		if e.Negative() {
			neg = append(neg, e)
		} else {
			pos = append(pos, e)
		}
	}
	return neg, pos
}

// findCycleConflicts inspects a patched mtree that failed its closure
// check for nodes unreachable from the root — the signature of a
// cross-script move cycle — and pairs the orphaned attaching groups of
// ours with those of theirs.
func findCycleConflicts(mt *mtree.MTree, ga, gb []*group) []rawConflict {
	reach := make(map[uri.URI]bool)
	var walk func(n *mtree.MNode)
	walk = func(n *mtree.MNode) {
		if n == nil || reach[n.URI] {
			return
		}
		reach[n.URI] = true
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(mt.Root())

	// A group participates in the cycle if one of its surviving attaches
	// targets an unreachable parent.
	orphaned := func(groups []*group) []*group {
		var out []*group
		for _, g := range groups {
			if g.dead {
				continue
			}
			for _, e := range g.edits {
				if at, ok := e.(truechange.Attach); ok && !reach[at.Parent.URI] {
					out = append(out, g)
					break
				}
			}
		}
		return out
	}
	oa, ob := orphaned(ga), orphaned(gb)
	if len(oa) == 0 || len(ob) == 0 {
		return nil // not attributable to a cross-script pair
	}
	var out []rawConflict
	for _, a := range oa {
		for _, b := range ob {
			u := uri.Root
			for _, e := range a.edits {
				if at, ok := e.(truechange.Attach); ok && !reach[at.Parent.URI] {
					u = at.Parent.URI
					break
				}
			}
			out = append(out, rawConflict{kind: ConflictCycle, uri: u, a: a, b: b})
		}
	}
	return out
}

// Apply patches mt with the merged script, then calls accept (if non-nil)
// to validate the outcome; if accept rejects, the merge is rolled back
// exactly by patching the inverse script, and the rejection error is
// returned wrapped. A nil accept commits unconditionally.
func Apply(mt *mtree.MTree, res *Result, accept func(*mtree.MTree) error) error {
	if res == nil || res.Script == nil {
		return fmt.Errorf("merge: nil merge result")
	}
	if err := mt.Patch(res.Script); err != nil {
		return fmt.Errorf("merge: apply: %w", err)
	}
	if accept == nil {
		return nil
	}
	if err := accept(mt); err != nil {
		if rbErr := mt.Patch(truechange.Invert(res.Script)); rbErr != nil {
			return fmt.Errorf("merge: rollback after rejection failed: %v (rejection: %w)", rbErr, err)
		}
		return fmt.Errorf("merge: rejected and rolled back: %w", err)
	}
	return nil
}

// sortConflicts orders conflicts deterministically for display.
func sortConflicts(cs []Conflict) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Kind != cs[j].Kind {
			return cs[i].Kind < cs[j].Kind
		}
		return cs[i].URI < cs[j].URI
	})
}
