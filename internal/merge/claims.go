package merge

import (
	"sort"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// This file is the claim analysis underneath conflict detection. It works
// entirely on the linear typing resources of truechange (Figure 3): roots
// (unattached subtrees, identified by URI) and slots (empty child links,
// identified by parent URI + link). In a well-typed closed script every
// resource is produced exactly once and consumed exactly once, so the edits
// connected by shared resources form "change groups" — the smallest units
// that can be dropped from a script while keeping the remainder closed.
// Conflicts are then intersections of the base-tree claims of one script's
// groups with the other's; no tree heuristics are involved.

// resKey identifies one linear typing resource: a root (slot == false) or
// an empty slot (slot == true).
type resKey struct {
	slot bool
	u    uri.URI
	link sig.Link
}

func rootRes(u uri.URI) resKey             { return resKey{u: u} }
func slotRes(u uri.URI, l sig.Link) resKey { return resKey{slot: true, u: u, link: l} }

// editResources enumerates the typing resources an edit produces or
// consumes. Update touches neither roots nor slots, so it contributes no
// resources and always forms a singleton group.
func editResources(e truechange.Edit, add func(resKey)) {
	switch ed := e.(type) {
	case truechange.Detach:
		add(rootRes(ed.Node.URI))
		add(slotRes(ed.Parent.URI, ed.Link))
	case truechange.Attach:
		add(rootRes(ed.Node.URI))
		add(slotRes(ed.Parent.URI, ed.Link))
	case truechange.Load:
		add(rootRes(ed.Node.URI))
		for _, k := range ed.Kids {
			add(rootRes(k.URI))
		}
	case truechange.Unload:
		add(rootRes(ed.Node.URI))
		for _, k := range ed.Kids {
			add(rootRes(k.URI))
		}
	}
}

// group is one resource-connected component of a script's edits, with the
// claims it makes on the base tree:
//
//   - slots: child slots the group empties and refills (Detach/Attach
//     parent slots);
//   - updates: nodes whose literals the group rewrites (Update);
//   - deletes: base nodes the group unloads (Unload of a node the same
//     script did not itself load);
//   - loads: URIs the group loads fresh (never base claims, but needed to
//     tell churn from deletion and to canonicalize equivalence).
type group struct {
	id      int
	indices []int // edit positions in the owning script, ascending
	edits   []truechange.Edit
	dead    bool // dropped by a resolution policy or convergence

	slots   map[truechange.Slot]bool
	updates map[uri.URI]bool
	deletes map[uri.URI]bool
	loads   map[uri.URI]bool
}

// computeGroups partitions a script into change groups with a union-find
// over shared typing resources, returning the groups ordered by their first
// edit (deterministic for a given script).
func computeGroups(s *truechange.Script) []*group {
	n := len(s.Edits)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb { // keep the smallest index as representative
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	owner := make(map[resKey]int)
	for i, e := range s.Edits {
		editResources(e, func(r resKey) {
			if o, ok := owner[r]; ok {
				union(i, o)
			} else {
				owner[r] = i
			}
		})
	}

	byRep := make(map[int]*group)
	var out []*group
	for i, e := range s.Edits {
		rep := find(i)
		g := byRep[rep]
		if g == nil {
			g = &group{id: len(out)}
			byRep[rep] = g
			out = append(out, g)
		}
		g.indices = append(g.indices, i)
		g.edits = append(g.edits, e)
	}
	for _, g := range out {
		g.computeClaims()
	}
	return out
}

// computeClaims derives the group's base-tree claims from its edits. Edits
// are visited in script order, so a Load is recorded before any later
// Unload of the same URI (load/unload churn is not a deletion of base
// material); an Unload preceding a Load of the same URI deletes a base node
// that the script then reuses the URI of, and stays a delete claim.
func (g *group) computeClaims() {
	g.slots = make(map[truechange.Slot]bool)
	g.updates = make(map[uri.URI]bool)
	g.deletes = make(map[uri.URI]bool)
	g.loads = make(map[uri.URI]bool)
	for _, e := range g.edits {
		switch ed := e.(type) {
		case truechange.Detach:
			g.slots[truechange.Slot{URI: ed.Parent.URI, Link: ed.Link}] = true
		case truechange.Attach:
			g.slots[truechange.Slot{URI: ed.Parent.URI, Link: ed.Link}] = true
		case truechange.Load:
			g.loads[ed.Node.URI] = true
		case truechange.Unload:
			if !g.loads[ed.Node.URI] {
				g.deletes[ed.Node.URI] = true
			}
		case truechange.Update:
			g.updates[ed.Node.URI] = true
		}
	}
}

// sortedSlots and sortedURIs give deterministic iteration over claim sets.
func sortedSlots(m map[truechange.Slot]bool) []truechange.Slot {
	out := make([]truechange.Slot, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].URI != out[j].URI {
			return out[i].URI < out[j].URI
		}
		return out[i].Link < out[j].Link
	})
	return out
}

func sortedURIs(m map[uri.URI]bool) []uri.URI {
	out := make([]uri.URI, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// claimIndex inverts one script's claims for cross-script lookup. Every
// entry is a slice: well-typed scripts claim each slot in exactly one group,
// but updates (and degenerate hand-written scripts) may repeat.
type claimIndex struct {
	slot       map[truechange.Slot][]*group
	slotParent map[uri.URI][]slotClaim // slot claims keyed by the slot's parent node
	update     map[uri.URI][]*group
	del        map[uri.URI][]*group
}

type slotClaim struct {
	slot truechange.Slot
	g    *group
}

func indexClaims(groups []*group) *claimIndex {
	ix := &claimIndex{
		slot:       make(map[truechange.Slot][]*group),
		slotParent: make(map[uri.URI][]slotClaim),
		update:     make(map[uri.URI][]*group),
		del:        make(map[uri.URI][]*group),
	}
	for _, g := range groups {
		for _, s := range sortedSlots(g.slots) {
			ix.slot[s] = append(ix.slot[s], g)
			ix.slotParent[s.URI] = append(ix.slotParent[s.URI], slotClaim{slot: s, g: g})
		}
		for _, u := range sortedURIs(g.updates) {
			ix.update[u] = append(ix.update[u], g)
		}
		for _, u := range sortedURIs(g.deletes) {
			ix.del[u] = append(ix.del[u], g)
		}
	}
	return ix
}

// rawConflict is one detected claim intersection between a group of ours
// (a) and a group of theirs (b), before convergence analysis and policy
// resolution.
type rawConflict struct {
	kind ConflictKind
	uri  uri.URI
	slot *truechange.Slot
	a, b *group
}

// detectConflicts intersects the claims of ours' groups with theirs'. The
// four claim rules together cover the conflict taxonomy:
//
//  1. shared slot claim (both scripts empty/refill the same child slot) —
//     competing attaches, competing subtree replacements, competing moves;
//  2. both update the same node's literals;
//  3. one updates a node the other deletes;
//  4. one edits a slot of (or both delete) a node inside a subtree the
//     other deletes — attach-into-unloaded-subtree and overlapping
//     deletions.
//
// Iteration is over sorted claim sets, so the conflict order is a pure
// function of the two scripts.
func detectConflicts(oursGroups []*group, theirsIx *claimIndex) []rawConflict {
	var out []rawConflict
	for _, ga := range oursGroups {
		for _, s := range sortedSlots(ga.slots) {
			s := s
			for _, gb := range theirsIx.slot[s] {
				out = append(out, rawConflict{kind: ConflictSlot, uri: s.URI, slot: &s, a: ga, b: gb})
			}
			// Rule 4, ours-edits-into-theirs-deleted direction.
			for _, gb := range theirsIx.del[s.URI] {
				out = append(out, rawConflict{kind: ConflictDeleteEdit, uri: s.URI, slot: &s, a: ga, b: gb})
			}
		}
		for _, u := range sortedURIs(ga.updates) {
			for _, gb := range theirsIx.update[u] {
				out = append(out, rawConflict{kind: ConflictUpdateUpdate, uri: u, a: ga, b: gb})
			}
			for _, gb := range theirsIx.del[u] {
				out = append(out, rawConflict{kind: ConflictUpdateDelete, uri: u, a: ga, b: gb})
			}
		}
		for _, u := range sortedURIs(ga.deletes) {
			for _, gb := range theirsIx.update[u] {
				out = append(out, rawConflict{kind: ConflictUpdateDelete, uri: u, a: ga, b: gb})
			}
			for _, gb := range theirsIx.del[u] {
				out = append(out, rawConflict{kind: ConflictDeleteDelete, uri: u, a: ga, b: gb})
			}
			// Rule 4, theirs-edits-into-ours-deleted direction.
			for _, sc := range theirsIx.slotParent[u] {
				sc := sc
				out = append(out, rawConflict{kind: ConflictDeleteEdit, uri: u, slot: &sc.slot, a: ga, b: sc.g})
			}
		}
	}
	return out
}

// groupsEquivalent reports whether two change groups describe the same
// change: identical edit sequences up to a bijective renaming of their
// freshly loaded URIs, with literals compared by tree.LitEqual (bit-pattern
// float semantics — the PR 4 bug class). Equivalent groups are convergent
// edits (both sides made the same change) and auto-resolve by keeping one
// copy.
func groupsEquivalent(a, b *group) bool {
	if len(a.edits) != len(b.edits) {
		return false
	}
	// ab is the fresh-URI bijection built up in edit order.
	ab := make(map[uri.URI]uri.URI)
	ba := make(map[uri.URI]uri.URI)
	uriEq := func(ua, ub uri.URI) bool {
		fa, fb := a.loads[ua], b.loads[ub]
		if fa != fb {
			return false
		}
		if !fa {
			return ua == ub // base URIs must match exactly
		}
		if mb, ok := ab[ua]; ok {
			return mb == ub
		}
		if ma, ok := ba[ub]; ok {
			return ma == ua
		}
		ab[ua] = ub
		ba[ub] = ua
		return true
	}
	refEq := func(na, nb truechange.NodeRef) bool {
		return na.Tag == nb.Tag && uriEq(na.URI, nb.URI)
	}
	kidsEq := func(ka, kb []truechange.KidArg) bool {
		if len(ka) != len(kb) {
			return false
		}
		byLink := make(map[sig.Link]uri.URI, len(kb))
		for _, k := range kb {
			byLink[k.Link] = k.URI
		}
		for _, k := range ka {
			ub, ok := byLink[k.Link]
			if !ok || !uriEq(k.URI, ub) {
				return false
			}
		}
		return true
	}
	litsEq := func(la, lb []truechange.LitArg) bool {
		if len(la) != len(lb) {
			return false
		}
		byLink := make(map[sig.Link]any, len(lb))
		for _, l := range lb {
			byLink[l.Link] = l.Value
		}
		for _, l := range la {
			vb, ok := byLink[l.Link]
			if !ok || !tree.LitEqual(l.Value, vb) {
				return false
			}
		}
		return true
	}
	for i := range a.edits {
		switch ea := a.edits[i].(type) {
		case truechange.Detach:
			eb, ok := b.edits[i].(truechange.Detach)
			if !ok || ea.Link != eb.Link || !refEq(ea.Node, eb.Node) || !refEq(ea.Parent, eb.Parent) {
				return false
			}
		case truechange.Attach:
			eb, ok := b.edits[i].(truechange.Attach)
			if !ok || ea.Link != eb.Link || !refEq(ea.Node, eb.Node) || !refEq(ea.Parent, eb.Parent) {
				return false
			}
		case truechange.Load:
			eb, ok := b.edits[i].(truechange.Load)
			if !ok || !refEq(ea.Node, eb.Node) || !kidsEq(ea.Kids, eb.Kids) || !litsEq(ea.Lits, eb.Lits) {
				return false
			}
		case truechange.Unload:
			eb, ok := b.edits[i].(truechange.Unload)
			if !ok || !refEq(ea.Node, eb.Node) || !kidsEq(ea.Kids, eb.Kids) || !litsEq(ea.Lits, eb.Lits) {
				return false
			}
		case truechange.Update:
			eb, ok := b.edits[i].(truechange.Update)
			if !ok || !refEq(ea.Node, eb.Node) || !litsEq(ea.Old, eb.Old) || !litsEq(ea.New, eb.New) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// freshLoads returns the URIs a script loads fresh: URIs with a Load edit
// not preceded by an Unload of the same URI (an unload-then-reload reuses a
// base URI and is not fresh).
func freshLoads(s *truechange.Script) map[uri.URI]bool {
	fresh := make(map[uri.URI]bool)
	unloaded := make(map[uri.URI]bool)
	for _, e := range s.Edits {
		switch ed := e.(type) {
		case truechange.Unload:
			unloaded[ed.Node.URI] = true
		case truechange.Load:
			if !unloaded[ed.Node.URI] {
				fresh[ed.Node.URI] = true
			}
		}
	}
	return fresh
}

// reserveScript advances alloc past every URI the script mentions.
func reserveScript(alloc *uri.Allocator, s *truechange.Script) {
	add := func(u uri.URI) { alloc.Reserve(u) }
	for _, e := range s.Edits {
		switch ed := e.(type) {
		case truechange.Detach:
			add(ed.Node.URI)
			add(ed.Parent.URI)
		case truechange.Attach:
			add(ed.Node.URI)
			add(ed.Parent.URI)
		case truechange.Load:
			add(ed.Node.URI)
			for _, k := range ed.Kids {
				add(k.URI)
			}
		case truechange.Unload:
			add(ed.Node.URI)
			for _, k := range ed.Kids {
				add(k.URI)
			}
		case truechange.Update:
			add(ed.Node.URI)
		}
	}
}

// renameScript returns a copy of the script with every URI in m replaced.
func renameScript(s *truechange.Script, m map[uri.URI]uri.URI) *truechange.Script {
	r := func(u uri.URI) uri.URI {
		if v, ok := m[u]; ok {
			return v
		}
		return u
	}
	rn := func(n truechange.NodeRef) truechange.NodeRef {
		n.URI = r(n.URI)
		return n
	}
	rkids := func(kids []truechange.KidArg) []truechange.KidArg {
		out := make([]truechange.KidArg, len(kids))
		for i, k := range kids {
			k.URI = r(k.URI)
			out[i] = k
		}
		return out
	}
	out := &truechange.Script{Edits: make([]truechange.Edit, len(s.Edits))}
	for i, e := range s.Edits {
		switch ed := e.(type) {
		case truechange.Detach:
			ed.Node, ed.Parent = rn(ed.Node), rn(ed.Parent)
			out.Edits[i] = ed
		case truechange.Attach:
			ed.Node, ed.Parent = rn(ed.Node), rn(ed.Parent)
			out.Edits[i] = ed
		case truechange.Load:
			ed.Node, ed.Kids = rn(ed.Node), rkids(ed.Kids)
			out.Edits[i] = ed
		case truechange.Unload:
			ed.Node, ed.Kids = rn(ed.Node), rkids(ed.Kids)
			out.Edits[i] = ed
		case truechange.Update:
			ed.Node = rn(ed.Node)
			out.Edits[i] = ed
		default:
			out.Edits[i] = e
		}
	}
	return out
}

// remapFreshCollisions renames theirs' fresh load URIs that collide with
// ours' fresh load URIs, drawing replacements from past every URI either
// script or the base tree mentions. Scripts produced by Merge (one shared
// allocator across both diffs) never collide; script-level callers may hand
// in independently produced scripts that do.
func remapFreshCollisions(base *tree.Node, ours, theirs *truechange.Script) *truechange.Script {
	la, lb := freshLoads(ours), freshLoads(theirs)
	var collide []uri.URI
	for u := range lb {
		if la[u] {
			collide = append(collide, u)
		}
	}
	if len(collide) == 0 {
		return theirs
	}
	sort.Slice(collide, func(i, j int) bool { return collide[i] < collide[j] })
	alloc := uri.NewAllocator()
	tree.Walk(base, func(n *tree.Node) { alloc.Reserve(n.URI) })
	reserveScript(alloc, ours)
	reserveScript(alloc, theirs)
	m := make(map[uri.URI]uri.URI, len(collide))
	for _, u := range collide {
		m[u] = alloc.Fresh()
	}
	return renameScript(theirs, m)
}
