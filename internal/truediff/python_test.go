package truediff

import (
	"testing"

	"repro/internal/mtree"
	"repro/internal/pylang"
	"repro/internal/truechange"
)

// Integration tests on realistic Python sources, the paper's evaluation
// substrate: parse two versions, diff, verify, and check that the script
// shape matches the edit (moves for moves, updates for renames, …).

func diffPython(t *testing.T, before, after string) (*Result, *pylang.Factory) {
	t.Helper()
	f := pylang.NewFactory()
	src, err := pylang.Parse(before, f)
	if err != nil {
		t.Fatalf("parse before: %v", err)
	}
	dst, err := pylang.Parse(after, f)
	if err != nil {
		t.Fatalf("parse after: %v", err)
	}
	d := New(f.Schema())
	res, err := d.Diff(src, dst, f.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if err := truechange.WellTyped(f.Schema(), res.Script); err != nil {
		t.Fatalf("ill-typed: %v\n%s", err, res.Script)
	}
	mt, err := mtree.FromTree(f.Schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatal(err)
	}
	if !mt.EqualTree(dst) {
		t.Fatalf("patched ≠ target:\n%s", res.Script)
	}
	return res, f
}

func TestPythonRenameIsSingleUpdate(t *testing.T) {
	before := "def compute(x):\n    return x * 2\n\ndef main():\n    pass\n"
	after := "def compute_v2(x):\n    return x * 2\n\ndef main():\n    pass\n"
	res, _ := diffPython(t, before, after)
	st := truechange.ComputeStats(res.Script)
	if st.Updates != 1 || st.Compound != 1 {
		t.Errorf("rename should be one update, got %s\n%s", st, res.Script)
	}
}

func TestPythonLiteralTweak(t *testing.T) {
	before := "LEARNING_RATE = 0.01\nEPOCHS = 100\n"
	after := "LEARNING_RATE = 0.001\nEPOCHS = 100\n"
	res, _ := diffPython(t, before, after)
	st := truechange.ComputeStats(res.Script)
	if st.Compound != 1 || st.Updates != 1 {
		t.Errorf("literal tweak should be one update: %s", st)
	}
}

func TestPythonFunctionMoveUsesMoves(t *testing.T) {
	before := `def alpha(x):
    a = x + 1
    b = a * 2
    c = b - 3
    return a + b + c

def beta(y):
    return y

def gamma(z):
    return z * z
`
	// alpha moves to the end, body unchanged.
	after := `def beta(y):
    return y

def gamma(z):
    return z * z

def alpha(x):
    a = x + 1
    b = a * 2
    c = b - 3
    return a + b + c
`
	res, _ := diffPython(t, before, after)
	st := truechange.ComputeStats(res.Script)
	if st.Moves == 0 {
		t.Errorf("moving a function should produce move edits: %s\n%s", st, res.Script)
	}
	// The function body (≈25 nodes) must travel wholesale: far fewer loads
	// than the body size.
	if st.Loads > 10 {
		t.Errorf("function move should not reload the body: %s", st)
	}
}

func TestPythonStatementInsertReusesSuffix(t *testing.T) {
	before := `def run(self):
    self.setup()
    self.validate()
    self.execute()
    self.teardown()
`
	after := `def run(self):
    self.log("starting")
    self.setup()
    self.validate()
    self.execute()
    self.teardown()
`
	res, _ := diffPython(t, before, after)
	// Inserting at the head of a cons list reuses the whole tail: one new
	// statement (≈7 nodes) plus one spine cell and re-linking.
	if res.Script.EditCount() > 14 {
		t.Errorf("head insertion too expensive: %d edits\n%s",
			res.Script.EditCount(), res.Script)
	}
}

func TestPythonMethodBodySwap(t *testing.T) {
	before := `class Net:
    def forward(self, x):
        h = self.layer1(x)
        return self.layer2(h)

    def backward(self, grad):
        g = self.layer2.grad(grad)
        return self.layer1.grad(g)
`
	// The two method bodies swap.
	after := `class Net:
    def forward(self, x):
        g = self.layer2.grad(grad)
        return self.layer1.grad(g)

    def backward(self, grad):
        h = self.layer1(x)
        return self.layer2(h)
`
	res, _ := diffPython(t, before, after)
	st := truechange.ComputeStats(res.Script)
	if st.Moves < 2 {
		t.Errorf("body swap should move both bodies: %s\n%s", st, res.Script)
	}
	if st.Loads > 4 {
		t.Errorf("body swap should not reload bodies: %s", st)
	}
}

func TestPythonUnchangedFileIsEmptyScript(t *testing.T) {
	src := `import os

@cached
def expensive(n):
    with open("data") as fh:
        try:
            return [int(line) for line in fh if line]
        except ValueError:
            return []
`
	res, _ := diffPython(t, src, src)
	if !res.Script.IsEmpty() {
		t.Errorf("identical sources should diff empty:\n%s", res.Script)
	}
}

func TestPythonWrapInConditional(t *testing.T) {
	before := "def f(x):\n    process(x)\n    finish()\n"
	after := "def f(x):\n    if x is not None:\n        process(x)\n    finish()\n"
	res, _ := diffPython(t, before, after)
	st := truechange.ComputeStats(res.Script)
	// process(x) is reused inside the new conditional: it moves, the If
	// and its small scaffolding load fresh.
	if st.Moves == 0 {
		t.Errorf("wrapped statement should move, not reload: %s\n%s", st, res.Script)
	}
}

func TestPythonLargeFileSmallChange(t *testing.T) {
	// Build a larger realistic file by repetition, then change one line.
	var before, after string
	for i := 0; i < 40; i++ {
		fn := "def handler_" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + "(payload):\n" +
			"    data = parse(payload)\n" +
			"    if data is None:\n        raise ValueError(\"empty\")\n" +
			"    return transform(data)\n\n"
		before += fn
		after += fn
	}
	after += "COUNTER = 1\n"
	res, _ := diffPython(t, before, after)
	if res.Script.EditCount() > 8 {
		t.Errorf("appending one constant to a large file cost %d edits", res.Script.EditCount())
	}
}
