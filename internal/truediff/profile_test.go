package truediff

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"runtime/pprof"
	"runtime/trace"
	"testing"

	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/tree"
)

// profilePair builds a small source/target pair with enough structure that
// every phase does real work.
func profilePair(t *testing.T) (*tree.Builder, *tree.Node, *tree.Node) {
	t.Helper()
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))
	return b, src, dst
}

// TestProfileLabelsReachPhases asserts that with Options.ProfileLabels
// every phase body runs under a context carrying the phase pprof label
// (the deterministic counterpart of the sampling-based CPU-profile test).
func TestProfileLabelsReachPhases(t *testing.T) {
	b, src, dst := profilePair(t)

	var seen []string
	ProfilePhaseHook = func(ctx context.Context, p telemetry.Phase) {
		val, ok := pprof.Label(ctx, PprofPhaseLabel)
		if !ok {
			t.Errorf("phase %v: context carries no %q label", p, PprofPhaseLabel)
			return
		}
		if val != p.String() {
			t.Errorf("phase %v: label %s=%q, want %q", p, PprofPhaseLabel, val, p.String())
		}
		seen = append(seen, val)
	}
	defer func() { ProfilePhaseHook = nil }()

	d := NewWithOptions(b.Schema(), Options{ProfileLabels: true})
	if _, err := d.Diff(src, dst, b.Alloc()); err != nil {
		t.Fatalf("diff: %v", err)
	}
	want := []string{"prepare", "shares", "select", "emit"}
	if len(seen) != len(want) {
		t.Fatalf("hook saw phases %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw phases %v, want %v (order matters)", seen, want)
		}
	}

	// Without ProfileLabels the hook must never fire: the default path
	// touches no label machinery.
	seen = nil
	plain := New(b.Schema())
	if _, err := plain.Diff(src, dst, b.Alloc()); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(seen) != 0 {
		t.Fatalf("unprofiled diff entered labeled phases: %v", seen)
	}
}

// TestProfileLabelsNestOnCallerContext asserts labels compose: a label
// already on the incoming context (as the engine's worker and pair labels
// are) stays visible inside the phase bodies alongside the phase label.
func TestProfileLabelsNestOnCallerContext(t *testing.T) {
	b, src, dst := profilePair(t)

	calls := 0
	ProfilePhaseHook = func(ctx context.Context, p telemetry.Phase) {
		calls++
		if v, ok := pprof.Label(ctx, "pair"); !ok || v != "outer" {
			t.Errorf("phase %v: outer label pair=%q (ok=%v), want \"outer\"", p, v, ok)
		}
		if _, ok := pprof.Label(ctx, PprofPhaseLabel); !ok {
			t.Errorf("phase %v: phase label missing under nested context", p)
		}
	}
	defer func() { ProfilePhaseHook = nil }()

	d := NewWithOptions(b.Schema(), Options{ProfileLabels: true})
	pprof.Do(context.Background(), pprof.Labels("pair", "outer"), func(ctx context.Context) {
		if _, err := d.DiffCtx(ctx, src, dst, b.Alloc()); err != nil {
			t.Fatalf("diff: %v", err)
		}
	})
	if calls != telemetry.NumPhases {
		t.Fatalf("hook fired %d times, want %d", calls, telemetry.NumPhases)
	}
}

// TestTraceRegionsEmitted captures a runtime/trace around a profiled diff
// and asserts the task and the four phase regions appear in the raw trace
// stream (their names are stored as plain strings in the trace's string
// table).
func TestTraceRegionsEmitted(t *testing.T) {
	b, src, dst := profilePair(t)
	d := NewWithOptions(b.Schema(), Options{ProfileLabels: true})

	var buf bytes.Buffer
	if err := trace.Start(&buf); err != nil {
		t.Skipf("trace.Start: %v (tracing already active?)", err)
	}
	_, err := d.Diff(src, dst, b.Alloc())
	trace.Stop()
	if err != nil {
		t.Fatalf("diff: %v", err)
	}

	raw := buf.Bytes()
	if !bytes.Contains(raw, []byte(TraceTaskName)) {
		t.Errorf("trace does not mention task %q", TraceTaskName)
	}
	for p := 0; p < telemetry.NumPhases; p++ {
		name := TraceRegionPrefix + telemetry.Phase(p).String()
		if !bytes.Contains(raw, []byte(name)) {
			t.Errorf("trace does not mention region %q", name)
		}
	}
}

// TestCPUProfileCarriesPhaseLabels takes a real CPU profile over a burst
// of profiled diffs and asserts the phase label key and values appear in
// the profile's string table — i.e. labels survive all the way into
// profile samples, not just contexts. Sampling-based, so it only requires
// the two phases that dominate runtime and is skipped under -short.
func TestCPUProfileCarriesPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling-based; skipped under -short")
	}
	b, src, dst := profilePair(t)
	d := NewWithOptions(b.Schema(), Options{ProfileLabels: true})
	scratch := NewScratch()

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("StartCPUProfile: %v (profiling already active?)", err)
	}
	// A few hundred milliseconds of diffing yields dozens of samples at
	// the default 100 Hz rate.
	for i := 0; i < 20000; i++ {
		if _, err := d.DiffScratchChecked(src, dst, b.Alloc(), scratch, nil); err != nil {
			pprof.StopCPUProfile()
			t.Fatalf("diff: %v", err)
		}
	}
	pprof.StopCPUProfile()

	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}
	if !bytes.Contains(raw, []byte(PprofPhaseLabel)) {
		t.Fatalf("CPU profile carries no %q label key", PprofPhaseLabel)
	}
	found := 0
	for p := 0; p < telemetry.NumPhases; p++ {
		if bytes.Contains(raw, []byte(telemetry.Phase(p).String())) {
			found++
		}
	}
	if found < 2 {
		t.Errorf("CPU profile mentions only %d of %d phase names; samples not decomposing by phase", found, telemetry.NumPhases)
	}
}
