package truediff

import (
	"fmt"

	"repro/internal/derrors"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// RootReplace synthesizes the degradation script of the resilience layer:
// the source tree is detached from the pre-defined root and unloaded node
// by node, the target tree is loaded bottom-up with fresh URIs and attached
// in its place. No subtree is reused, so the script is maximally verbose
// (SourceSize + TargetSize + 2 edit operations) — but it is well-typed by
// construction for any pair of schema-conforming trees: it is exactly the
// replacement case of the step-4 traversal (§4.4) with an empty assignment,
// which Theorem 3.6 covers. The engine falls back to it when a diff
// panics, exceeds its deadline, or emits an ill-typed script, so callers
// still receive a script that patches cleanly.
//
// The contract on alloc matches Diff: it must dominate every URI in
// source, and nil derives an allocator by reserving source's URIs.
func (d *Differ) RootReplace(source, target *tree.Node, alloc *uri.Allocator) (*Result, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("truediff: %w", derrors.ErrNilTree)
	}
	if alloc == nil {
		alloc = uri.NewAllocator()
		tree.Walk(source, func(n *tree.Node) { alloc.Reserve(n.URI) })
	}
	if err := d.checkSchema(source, nil); err != nil {
		return nil, err
	}
	if err := d.checkSchema(target, nil); err != nil {
		return nil, err
	}
	r := &run{sch: d.sch, opts: d.opts, s: NewScratch(), alloc: alloc}
	if d.opts.Explain != nil {
		r.explain = newExplainState()
		r.explain.forced = ReasonRootReplace
	}
	detach := truechange.Detach{Node: ref(source), Link: sig.RootLink, Parent: truechange.RootRef}
	r.s.buf.Add(detach)
	if r.explain != nil {
		r.explain.record(detach, EditProvenance{})
	}
	r.unloadUnassigned(source) // empty assignment: unloads every node
	t := r.loadUnassigned(target)
	attach := truechange.Attach{Node: ref(t), Link: sig.RootLink, Parent: truechange.RootRef}
	r.s.buf.Add(attach)
	if r.explain != nil {
		r.explain.record(attach, EditProvenance{})
		d.opts.Explain.ExplainDiff(r.explain.finish(source, target))
	}
	return &Result{Script: r.s.buf.Script(), Patched: t}, nil
}
