package truediff

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/mtree"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// diffAndVerify runs the full verification pipeline on a diff: the script
// must be well-typed (Conjecture 4.2), syntactically compliant, and
// patching the source must yield the target (Conjecture 4.3); the patched
// tree returned by Diff must equal the target as well.
func diffAndVerify(t *testing.T, d *Differ, src, dst *tree.Node, alloc *uri.Allocator) *Result {
	t.Helper()
	res, err := d.Diff(src, dst, alloc)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if err := truechange.WellTyped(d.sch, res.Script); err != nil {
		t.Fatalf("script ill-typed: %v\nsrc = %s\ndst = %s\nscript = %s", err, src, dst, res.Script)
	}
	mt, err := mtree.FromTree(d.sch, src)
	if err != nil {
		t.Fatalf("mtree: %v", err)
	}
	if err := mt.Comply(res.Script); err != nil {
		t.Fatalf("script does not comply: %v\nsrc = %s\ndst = %s\nscript = %s", err, src, dst, res.Script)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if !mt.EqualTree(dst) {
		t.Fatalf("patched tree differs from target:\npatched = %s\ntarget  = %s\nscript = %s", mt, dst, res.Script)
	}
	if err := mt.CheckClosed(); err != nil {
		t.Fatalf("patched tree not closed: %v", err)
	}
	if !tree.Equal(res.Patched, dst) {
		t.Fatalf("returned patched tree differs from target:\n%s\n%s", res.Patched, dst)
	}
	return res
}

// TestPaperIntroExample reproduces the §1/§2 example: the minimal script
// for diff(Add1(Sub2(a3,b4), Mul5(c6,d7)), Add(d, Mul(c, Sub(a,b)))) is two
// detaches followed by two attaches.
func TestPaperIntroExample(t *testing.T) {
	b := exp.NewBuilder()
	// URIs: a=1, b=2, Sub=3, c=4, d=5, Mul=6, Add=7.
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))

	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())

	want := []string{
		`detach(Sub#3, "e1", Add#7)`,
		`detach(Var#5, "e2", Mul#6)`,
		`attach(Var#5, "e1", Add#7)`,
		`attach(Sub#3, "e2", Mul#6)`,
	}
	if len(res.Script.Edits) != len(want) {
		t.Fatalf("script length = %d, want %d:\n%s", len(res.Script.Edits), len(want), res.Script)
	}
	for i, w := range want {
		if got := res.Script.Edits[i].String(); got != w {
			t.Errorf("edit %d = %s, want %s", i, got, w)
		}
	}
	if res.Script.EditCount() != 4 {
		t.Errorf("EditCount = %d, want 4", res.Script.EditCount())
	}
}

// TestPaperSection4Example reproduces the running example of §4:
// diff(Add1(Call2("f",Num3(1)), Num4(2)), Add(Call("g",Num(1)), Sub(Num(2),Num(2)))).
// The Call is reused with a literal update, Num4 is detached and reused
// inside the freshly loaded Sub, and one Num(2) is loaded afresh.
func TestPaperSection4Example(t *testing.T) {
	b := exp.NewBuilder()
	// URIs: Num(1)=1, Call=2, Num(2)=3, Add=4.
	src := b.MustN(exp.Add,
		b.MustN(exp.Call, b.MustN(exp.Num, 1), "f"),
		b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Call, b.MustN(exp.Num, 1), "g"),
		b.MustN(exp.Sub, b.MustN(exp.Num, 2), b.MustN(exp.Num, 2)))

	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())

	var detaches, unloads, loads, attaches, updates int
	var loadedTags []string
	for _, e := range res.Script.Edits {
		switch ed := e.(type) {
		case truechange.Detach:
			detaches++
			if ed.Node.URI != 3 {
				t.Errorf("detached %s, want Num#3", ed.Node)
			}
		case truechange.Unload:
			unloads++
		case truechange.Load:
			loads++
			loadedTags = append(loadedTags, string(ed.Node.Tag))
		case truechange.Attach:
			attaches++
		case truechange.Update:
			updates++
			if ed.Node.URI != 2 || ed.New[0].Value != "g" {
				t.Errorf("update = %s, want Call#2 f→g", ed)
			}
		}
	}
	if detaches != 1 || unloads != 0 || loads != 2 || attaches != 1 || updates != 1 {
		t.Errorf("edit profile detach/unload/load/attach/update = %d/%d/%d/%d/%d, want 1/0/2/1/1:\n%s",
			detaches, unloads, loads, attaches, updates, res.Script)
	}
	if len(loadedTags) == 2 && !(loadedTags[0] == "Num" && loadedTags[1] == "Sub") {
		t.Errorf("loads = %v, want kid Num before parent Sub", loadedTags)
	}
	// Num4 (URI 3 here) must be reused inside the loaded Sub.
	for _, e := range res.Script.Edits {
		if l, ok := e.(truechange.Load); ok && l.Node.Tag == exp.Sub {
			found := false
			for _, k := range l.Kids {
				if k.URI == 3 {
					found = true
				}
			}
			if !found {
				t.Errorf("loaded Sub does not reuse Num#3: %s", l)
			}
		}
	}
}

// TestExcessiveDemand diffs Add(a,b) against Add(b,b): one source b cannot
// be used twice, so the result is either a literal update of a (what the
// preemptive whole-tree assignment yields, since the trees are structurally
// equivalent) — and must in any case be correct and well-typed.
func TestExcessiveDemand(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))
	dst := b.MustN(exp.Add, b.MustN(exp.Var, "b"), b.MustN(exp.Var, "b"))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	// The trees are structurally equivalent, so the whole source is reused
	// and only one literal update is needed — even more concise than the
	// illustrative script of paper §2.
	if len(res.Script.Edits) != 1 {
		t.Errorf("script length = %d, want 1:\n%s", len(res.Script.Edits), res.Script)
	}
	if _, ok := res.Script.Edits[0].(truechange.Update); !ok {
		t.Errorf("expected a single update, got %s", res.Script)
	}
}

func TestIdenticalTreesYieldEmptyScript(t *testing.T) {
	g := exp.NewGen(1)
	for i := 0; i < 20; i++ {
		src := g.Tree(30)
		dst := tree.Clone(src, g.Alloc(), tree.SHA256)
		d := New(g.Schema())
		res := diffAndVerify(t, d, src, dst, g.Alloc())
		if !res.Script.IsEmpty() {
			t.Fatalf("identical trees produced edits:\n%s", res.Script)
		}
		if res.Patched != src {
			t.Error("identical trees should reuse the source as patched tree")
		}
	}
}

func TestLiteralOnlyChangeYieldsUpdates(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Mul, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Mul, b.MustN(exp.Num, 10), b.MustN(exp.Num, 2))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	if len(res.Script.Edits) != 1 {
		t.Fatalf("script = %s", res.Script)
	}
	up, ok := res.Script.Edits[0].(truechange.Update)
	if !ok || up.New[0].Value != int64(10) {
		t.Errorf("expected update to 10, got %s", res.Script)
	}
}

// TestRootReplacement diffs trees with nothing in common: the whole source
// is unloaded and the target loaded.
func TestRootReplacement(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Num, 1)
	dst := b.MustN(exp.Add, b.MustN(exp.Var, "x"), b.MustN(exp.Var, "y"))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	// detach+unload Num, load 3 nodes, attach root: 6 raw edits.
	if res.Script.Len() != 6 {
		t.Errorf("script length = %d:\n%s", res.Script.Len(), res.Script)
	}
	if res.Script.EditCount() != 4 { // del(Num) + 2 loads + ins(Add)
		t.Errorf("EditCount = %d, want 4", res.Script.EditCount())
	}
}

// TestSubtreeNotReusedTwice verifies linearity under excessive demand of a
// larger subtree: Call("f", Num(7)) required twice, present once.
func TestSubtreeNotReusedTwice(t *testing.T) {
	b := exp.NewBuilder()
	callOf := func(name string) *tree.Node {
		return b.MustN(exp.Call, b.MustN(exp.Num, 7), name)
	}
	src := b.MustN(exp.Add, callOf("f"), b.MustN(exp.Num, 0))
	dst := b.MustN(exp.Add, callOf("f"), callOf("f"))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	// The source Call is reused once; the second occurrence must be loaded
	// (2 loads: Num and Call) — or the literal-update path may cover one
	// side. Either way the verification above guarantees linear use.
	if res.Script.IsEmpty() {
		t.Error("demanding a subtree twice requires edits")
	}
}

// TestPropertyRandomMutations is the reproduction of the paper's >200 test
// cases for Conjectures 4.2 and 4.3: across many random trees and
// mutation sequences, the generated script is well-typed, compliant, and
// correct.
func TestPropertyRandomMutations(t *testing.T) {
	d := New(exp.Schema())
	cases := 0
	for seed := int64(0); seed < 25; seed++ {
		g := exp.NewGen(seed)
		for _, size := range []int{1, 2, 5, 20, 80} {
			src := g.Tree(size)
			for _, edits := range []int{1, 3, 8} {
				dst := g.MutateN(src, edits)
				diffAndVerify(t, d, src, dst, g.Alloc())
				cases++
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d cases exercised, want ≥ 200", cases)
	}
}

// TestPropertyUnrelatedTrees diffs completely unrelated random trees.
func TestPropertyUnrelatedTrees(t *testing.T) {
	d := New(exp.Schema())
	g := exp.NewGen(42)
	for i := 0; i < 30; i++ {
		src := g.Tree(3 + i*5)
		dst := g.Tree(2 + i*7)
		diffAndVerify(t, d, src, dst, g.Alloc())
	}
}

// TestOptionCombinations runs the correctness property under every ablation
// configuration.
func TestOptionCombinations(t *testing.T) {
	for _, equiv := range []EquivMode{StructuralWithLiteralPreference, ExactOnly, StructuralNoPreference} {
		for _, order := range []SelectionOrder{HighestFirst, FIFO} {
			for _, upd := range []bool{false, true} {
				opts := Options{Equiv: equiv, Order: order, UpdateOnLitMismatch: upd}
				name := fmt.Sprintf("equiv=%d order=%d upd=%v", equiv, order, upd)
				t.Run(name, func(t *testing.T) {
					d := NewWithOptions(exp.Schema(), opts)
					g := exp.NewGen(7)
					for i := 0; i < 15; i++ {
						src := g.Tree(40)
						dst := g.MutateN(src, 4)
						diffAndVerify(t, d, src, dst, g.Alloc())
					}
				})
			}
		}
	}
}

// TestPreferredCandidateSelection checks that an exact copy is preferred
// over a structurally equivalent candidate with different literals.
func TestPreferredCandidateSelection(t *testing.T) {
	b := exp.NewBuilder()
	// Source has two structurally equivalent subtrees: Call("f",Num 1) and
	// Call("g",Num 2). Target demands Call("g",Num 2) in a fresh context;
	// the exact copy must be chosen, yielding zero updates.
	src := b.MustN(exp.Add,
		b.MustN(exp.Call, b.MustN(exp.Num, 1), "f"),
		b.MustN(exp.Call, b.MustN(exp.Num, 2), "g"))
	dst := b.MustN(exp.Sub,
		b.MustN(exp.Call, b.MustN(exp.Num, 2), "g"),
		b.MustN(exp.Num, 99))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	for _, e := range res.Script.Edits {
		if up, ok := e.(truechange.Update); ok && up.New[0].Value == "g" {
			t.Errorf("preferred selection should have reused the exact copy, got %s", up)
		}
	}

	// Under StructuralNoPreference the first registered candidate (the
	// "f" call) is taken instead, requiring a literal update. Rebuild the
	// trees so no node objects are shared with the earlier run.
	b2 := exp.NewBuilder()
	src2 := b2.MustN(exp.Add,
		b2.MustN(exp.Call, b2.MustN(exp.Num, 1), "f"),
		b2.MustN(exp.Call, b2.MustN(exp.Num, 2), "g"))
	dst2 := b2.MustN(exp.Sub,
		b2.MustN(exp.Call, b2.MustN(exp.Num, 2), "g"),
		b2.MustN(exp.Num, 99))
	d2 := NewWithOptions(b2.Schema(), Options{Equiv: StructuralNoPreference})
	res2 := diffAndVerify(t, d2, src2, dst2, b2.Alloc())
	sawCallAdaption := false
	for _, e := range res2.Script.Edits {
		if up, ok := e.(truechange.Update); ok && up.New[0].Value == "g" {
			sawCallAdaption = true
		}
	}
	if !sawCallAdaption {
		t.Error("no-preference selection should have picked the inexact candidate and adapted f→g")
	}
}

// TestHighestFirstAvoidsFragmentation: moving a large subtree as a whole
// must not be broken into pieces by reusing its fragments elsewhere first.
func TestHighestFirstAvoidsFragmentation(t *testing.T) {
	b := exp.NewBuilder()
	big := b.MustN(exp.Add,
		b.MustN(exp.Mul, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2)),
		b.MustN(exp.Mul, b.MustN(exp.Num, 3), b.MustN(exp.Num, 4)))
	src := b.MustN(exp.Call, big, "f")
	// Target moves `big` under a new wrapper.
	bigCopy := tree.Clone(big, b.Alloc(), tree.SHA256)
	dst := b.MustN(exp.Sub, bigCopy, b.MustN(exp.Num, 9))
	d := New(b.Schema())
	res := diffAndVerify(t, d, src, dst, b.Alloc())
	// big (7 nodes) is reused wholesale: no unload of its nodes and no
	// loads except Sub and Num(9).
	loads := 0
	for _, e := range res.Script.Edits {
		if _, ok := e.(truechange.Load); ok {
			loads++
		}
	}
	if loads != 2 {
		t.Errorf("loads = %d, want 2 (Sub, Num 9):\n%s", loads, res.Script)
	}
}

// TestInitialScript checks Definition 3.2 scripts produced for a fresh tree.
func TestInitialScript(t *testing.T) {
	g := exp.NewGen(3)
	d := New(g.Schema())
	for i := 0; i < 10; i++ {
		target := g.Tree(25)
		res, err := d.InitialScript(target, g.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		if err := truechange.WellTypedInit(g.Schema(), res.Script); err != nil {
			t.Fatalf("initial script ill-typed: %v", err)
		}
		mt := mtree.New(g.Schema())
		if err := mt.Patch(res.Script); err != nil {
			t.Fatalf("patch: %v", err)
		}
		if !mt.EqualTree(target) {
			t.Fatalf("initialized tree differs from target")
		}
		if err := mt.CheckClosed(); err != nil {
			t.Fatal(err)
		}
		// One load per node plus the final attach.
		if res.Script.Len() != target.Size()+1 {
			t.Errorf("script length = %d, want %d", res.Script.Len(), target.Size()+1)
		}
	}
}

// TestPatchedTreeChains verifies the patched tree can drive a subsequent
// diff (the paper's use in incremental computing).
func TestPatchedTreeChains(t *testing.T) {
	g := exp.NewGen(11)
	d := New(g.Schema())
	cur := g.Tree(60)
	for i := 0; i < 20; i++ {
		next := g.Mutate(cur)
		res, err := d.Diff(cur, next, g.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		if err := truechange.WellTyped(g.Schema(), res.Script); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !tree.Equal(res.Patched, next) {
			t.Fatalf("round %d: patched ≠ target", i)
		}
		cur = res.Patched
	}
}

// TestConcisenessSmallEditSmallScript: a single literal mutation in a large
// tree must yield a script that does not grow with the tree.
func TestConcisenessSmallEditSmallScript(t *testing.T) {
	for _, size := range []int{50, 500, 5000} {
		g := exp.NewGen(int64(size))
		src := g.Tree(size)
		dst := g.Mutate(src)
		d := New(g.Schema())
		res, err := d.Diff(src, dst, g.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		// A single mutation touches at most a small replaced subtree (the
		// generator inserts trees of ≤ 7 nodes) plus spine effects.
		if res.Script.EditCount() > 25 {
			t.Errorf("size %d: single mutation produced %d edits", size, res.Script.EditCount())
		}
	}
}

func TestDiffNilAndAllocDefaults(t *testing.T) {
	b := exp.NewBuilder()
	n := b.MustN(exp.Num, 1)
	d := New(b.Schema())
	if _, err := d.Diff(nil, n, nil); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := d.Diff(n, nil, nil); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := d.InitialScript(nil, nil); err == nil {
		t.Error("nil target should fail")
	}
	// nil allocator: Diff must still produce fresh URIs not colliding with
	// the source.
	b2 := exp.NewBuilder()
	src := b2.MustN(exp.Num, 1)
	dst := b2.MustN(exp.Add, b2.MustN(exp.Var, "x"), b2.MustN(exp.Var, "y"))
	res, err := d.Diff(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uri.URI]bool{src.URI: true}
	for _, e := range res.Script.Edits {
		if l, ok := e.(truechange.Load); ok {
			if seen[l.Node.URI] {
				t.Errorf("loaded URI %s collides", l.Node.URI)
			}
			seen[l.Node.URI] = true
		}
	}
}

// TestInverseScriptsRestoreOriginal: applying a diff's script and then the
// inverse script restores the original tree — truechange patches are
// invertible values (the darcs-style patch-theory angle of paper §7).
func TestInverseScriptsRestoreOriginal(t *testing.T) {
	d := New(exp.Schema())
	for seed := int64(0); seed < 10; seed++ {
		g := exp.NewGen(seed)
		src := g.Tree(45)
		dst := g.MutateN(src, 3)
		res, err := d.Diff(src, dst, g.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		inv := truechange.Invert(res.Script)
		if err := truechange.WellTyped(g.Schema(), inv); err != nil {
			t.Fatalf("seed %d: inverse ill-typed: %v", seed, err)
		}
		mt, err := mtree.FromTree(g.Schema(), src)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.Patch(res.Script); err != nil {
			t.Fatal(err)
		}
		if err := mt.Patch(inv); err != nil {
			t.Fatalf("seed %d: inverse patch failed: %v", seed, err)
		}
		if !mt.EqualTree(src) {
			t.Fatalf("seed %d: forward+inverse did not restore the original", seed)
		}
		if err := mt.CheckClosed(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScriptsSurviveWireFormat: a generated script serialized to JSON and
// back still type-checks and patches correctly (the transmission use case).
func TestScriptsSurviveWireFormat(t *testing.T) {
	d := New(exp.Schema())
	g := exp.NewGen(77)
	src := g.Tree(40)
	dst := g.MutateN(src, 3)
	res, err := d.Diff(src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Script)
	if err != nil {
		t.Fatal(err)
	}
	var back truechange.Script
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := truechange.WellTyped(g.Schema(), &back); err != nil {
		t.Fatalf("deserialized script ill-typed: %v", err)
	}
	mt, err := mtree.FromTree(g.Schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(&back); err != nil {
		t.Fatal(err)
	}
	if !mt.EqualTree(dst) {
		t.Fatal("deserialized script patched incorrectly")
	}
}

// TestComposeNormalizePreservesSemantics: composing per-edit scripts of an
// editing session with truechange.Compose yields one normalized script
// that is well-typed and takes the original tree to the final tree — the
// composition pattern of incremental pipelines.
func TestComposeNormalizePreservesSemantics(t *testing.T) {
	d := New(exp.Schema())
	for seed := int64(0); seed < 8; seed++ {
		g := exp.NewGen(seed)
		start := g.Tree(35)
		cur := start
		var scripts []*truechange.Script
		for step := 0; step < 6; step++ {
			next := g.Mutate(cur)
			res, err := d.Diff(cur, next, g.Alloc())
			if err != nil {
				t.Fatal(err)
			}
			scripts = append(scripts, res.Script)
			cur = res.Patched
		}
		composed := truechange.Compose(scripts...)
		if err := truechange.WellTyped(g.Schema(), composed); err != nil {
			t.Fatalf("seed %d: composed script ill-typed: %v", seed, err)
		}
		raw := truechange.Concat(scripts...)
		if composed.Len() > raw.Len() {
			t.Errorf("seed %d: normalization grew the script: %d > %d", seed, composed.Len(), raw.Len())
		}
		mt, err := mtree.FromTree(g.Schema(), start)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.Patch(composed); err != nil {
			t.Fatalf("seed %d: composed patch failed: %v", seed, err)
		}
		if !mt.EqualTree(cur) {
			t.Fatalf("seed %d: composed script does not reach the final tree", seed)
		}
		if err := mt.CheckClosed(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestComposeEditSessionShrinks: an edit that is later reverted should
// shrink under normalization (update fusion drops the net no-op).
func TestComposeEditSessionShrinks(t *testing.T) {
	b := exp.NewBuilder()
	v1 := b.MustN(exp.Mul, b.MustN(exp.Num, 1), b.MustN(exp.Var, "x"))
	d := New(b.Schema())
	// Session: change literal 1→5, then back 5→1.
	v2target := b.MustN(exp.Mul, b.MustN(exp.Num, 5), b.MustN(exp.Var, "x"))
	r1, err := d.Diff(v1, v2target, b.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	v3target := b.MustN(exp.Mul, b.MustN(exp.Num, 1), b.MustN(exp.Var, "x"))
	r2, err := d.Diff(r1.Patched, v3target, b.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	composed := truechange.Compose(r1.Script, r2.Script)
	if composed.Len() != 0 {
		t.Errorf("do+undo should normalize to the empty script:\n%s", composed)
	}
}
