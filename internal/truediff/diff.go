package truediff

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"repro/internal/derrors"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// EquivMode selects the pair of equivalence relations used to find and
// select reuse candidates (paper §4.1). The paper's configuration is
// StructuralWithLiteralPreference; the other modes exist for the ablation
// benchmarks called out in DESIGN.md.
type EquivMode uint8

const (
	// StructuralWithLiteralPreference identifies candidates by structural
	// equivalence (equal up to literals) and prefers literally equivalent
	// candidates, i.e. exact copies. This is the paper's choice.
	StructuralWithLiteralPreference EquivMode = iota
	// ExactOnly identifies candidates by full equality; subtrees with
	// changed literals are never reused.
	ExactOnly
	// StructuralNoPreference identifies candidates structurally but picks
	// them in registration order without preferring exact copies.
	StructuralNoPreference
)

// SelectionOrder controls how target subtrees acquire candidates in step 3.
type SelectionOrder uint8

const (
	// HighestFirst processes target subtrees in decreasing height order so
	// larger trees are reused as a whole (the paper's choice, avoiding
	// subtree fragmentation).
	HighestFirst SelectionOrder = iota
	// FIFO processes target subtrees in breadth-first order without height
	// batching; an ablation that admits fragmentation.
	FIFO
)

// Options configure a Differ. The zero value is the paper's configuration.
type Options struct {
	Equiv EquivMode
	Order SelectionOrder
	// UpdateOnLitMismatch lets the step-4 traversal continue across nodes
	// whose tags agree but whose literals differ, emitting an Update
	// instead of replacing the node. The paper's traversal requires tag
	// and literals to coincide; this is an ablation.
	UpdateOnLitMismatch bool
	// Tracer, when non-nil, receives span events for every diff: BeginDiff,
	// one Phase event per truediff step in order, EndDiff. Phase durations
	// are recorded into the Scratch regardless (see Scratch.PhaseTimes), so
	// a nil Tracer costs only the monotonic clock reads. A Tracer shared by
	// concurrent goroutines (the engine with Workers > 1) must be
	// concurrency-safe. A diff aborted by a Checkpoint leaves its span
	// unterminated: BeginDiff and the phases that completed are emitted,
	// EndDiff is not.
	Tracer telemetry.Tracer
	// CheckpointEvery is the number of nodes a checked diff (see
	// DiffScratchChecked) processes between polls of its Checkpoint. Zero
	// or negative selects DefaultCheckpointEvery. Smaller values abort
	// pathological diffs sooner at the cost of more polls.
	CheckpointEvery int
	// Explain, when non-nil, receives a structured Explanation of every
	// diff: one provenance record per emitted edit (index-aligned with the
	// script) describing which equivalence class matched, whether the
	// preferred (exact) or structural candidate won, at which height, how
	// many candidates were considered, and why losing subtrees were loaded
	// or unloaded instead of reused. Like Tracer, a nil Explain keeps the
	// hot path untouched (one pointer check per diff and per edit); a sink
	// shared by concurrent goroutines must be concurrency-safe. A
	// per-invocation sink can be carried by the context instead, see
	// ContextWithExplain.
	Explain ExplainSink
	// ProfileLabels turns on profiler-visible phase attribution: each diff
	// becomes a runtime/trace task ("truediff.diff") and each of the four
	// phases runs under a pprof label (phase=prepare|shares|select|emit)
	// and a runtime/trace region ("truediff/<phase>"), so CPU profiles and
	// execution traces decompose by phase. Costs two pprof.Do calls plus a
	// trace task per diff; off (zero value) the hot path is untouched. Use
	// DiffScratchProfiled (or the engine, which forwards its batch context)
	// to supply the context the labels propagate from.
	ProfileLabels bool
}

// DefaultCheckpointEvery is the default node interval between Checkpoint
// polls: frequent enough to bound abort latency to microseconds on
// ordinary hardware, rare enough to be invisible in the phase timings.
const DefaultCheckpointEvery = 1024

// Checkpoint is a cooperative cancellation hook threaded through the four
// phases of a checked diff: it is polled every Options.CheckpointEvery
// processed nodes, and a non-nil return aborts the diff immediately — in
// the middle of a phase, not just between diffs — with the returned error.
// A Checkpoint runs on the diffing goroutine and must be cheap (a context
// poll, a deadline comparison).
type Checkpoint func() error

// CtxCheckpoint adapts a context into a Checkpoint that aborts the diff
// once the context is done, reporting the cancellation cause. A nil or
// never-cancellable context (Done() == nil, e.g. context.Background())
// yields a nil Checkpoint, keeping the unchecked fast path.
func CtxCheckpoint(ctx context.Context) Checkpoint {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() error {
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		default:
			return nil
		}
	}
}

// diffAbort carries a Checkpoint error up the diffing recursion; it is the
// only panic value DiffScratchChecked recovers, everything else propagates.
type diffAbort struct{ err error }

// Differ computes truechange edit scripts between trees of one schema.
// A Differ is immutable after construction and safe for concurrent use by
// multiple goroutines; per-invocation state lives in a Scratch (one per
// goroutine) or is allocated per call.
type Differ struct {
	sch  *sig.Schema
	opts Options
}

// New returns a Differ with the paper's configuration.
func New(sch *sig.Schema) *Differ { return &Differ{sch: sch} }

// NewWithOptions returns a Differ with explicit options.
func NewWithOptions(sch *sig.Schema, opts Options) *Differ {
	return &Differ{sch: sch, opts: opts}
}

// Schema returns the schema the differ validates trees against.
func (d *Differ) Schema() *sig.Schema { return d.sch }

// Result carries the outcome of a diff: the edit script transforming the
// source into the target, and the patched tree, which reuses source
// subtrees (keeping their URIs) plus freshly loaded nodes and can serve as
// the source of a subsequent diff.
type Result struct {
	Script  *truechange.Script
	Patched *tree.Node
}

// Scratch holds the reusable per-invocation state of the algorithm: the
// subtree registry, the assignment map, the edit buffer, and the selection
// heap. Allocating these dominates the fixed cost of small diffs, so
// high-throughput callers (the batch engine's workers) recycle one Scratch
// across many diffs instead of allocating fresh maps each time.
//
// A Scratch is not safe for concurrent use; use one per goroutine. Reuse
// is invisible in the output: a recycled Scratch produces scripts
// identical to a fresh one.
type Scratch struct {
	reg      registry
	assigned map[*tree.Node]*tree.Node
	buf      *truechange.Buffer
	heap     nodeHeap
	queue    []*tree.Node
	phases   telemetry.PhaseTimes
}

// PhaseTimes returns the per-phase durations of the most recent DiffScratch
// run through this scratch (zeroed on entry to each run). The engine reads
// it after every diff to feed its phase histograms.
func (s *Scratch) PhaseTimes() telemetry.PhaseTimes { return s.phases }

// NewScratch returns an empty Scratch ready for DiffScratch.
func NewScratch() *Scratch {
	return &Scratch{
		reg:      newRegistry(),
		assigned: make(map[*tree.Node]*tree.Node),
		buf:      truechange.NewBuffer(),
	}
}

// Reset clears the scratch state while keeping its allocations.
func (s *Scratch) Reset() {
	s.reg.reset()
	clear(s.assigned)
	s.buf.Reset()
	s.heap.reset()
	clear(s.queue)
	s.queue = s.queue[:0]
	s.phases = telemetry.PhaseTimes{}
}

// Diff compares source against target and returns the edit script and
// patched tree (the paper's compareTo). Fresh URIs for loaded nodes are
// drawn from alloc, which must dominate every URI in source; passing the
// allocator the source was built with guarantees that. If alloc is nil,
// Diff allocates one that reserves the largest URI occurring in source.
//
// The source and target trees must be distinct structures: no *tree.Node
// may occur in both. Diff does not mutate either tree.
func (d *Differ) Diff(source, target *tree.Node, alloc *uri.Allocator) (*Result, error) {
	return d.DiffScratchChecked(source, target, alloc, NewScratch(), nil)
}

// DiffCtx is Diff with cooperative cancellation: the diff polls the
// context every Options.CheckpointEvery nodes and aborts mid-phase once it
// is done, returning the cancellation cause. With a never-cancellable
// context this is exactly Diff.
func (d *Differ) DiffCtx(ctx context.Context, source, target *tree.Node, alloc *uri.Allocator) (*Result, error) {
	return d.DiffScratchProfiled(ctx, source, target, alloc, NewScratch(), CtxCheckpoint(ctx))
}

// DiffScratch is Diff drawing its working state from s, which the caller
// may recycle across any number of diffs (the scratch is reset on entry).
// s must not be used by two goroutines at once.
func (d *Differ) DiffScratch(source, target *tree.Node, alloc *uri.Allocator, s *Scratch) (*Result, error) {
	return d.DiffScratchChecked(source, target, alloc, s, nil)
}

// DiffScratchChecked is DiffScratch with a cooperative abort hook: cp (when
// non-nil) is polled every Options.CheckpointEvery processed nodes across
// all four phases — schema validation walks, share assignment, candidate
// selection, and edit emission — and its error, if any, aborts the diff
// immediately and is returned wrapped. The scratch is safe to recycle after
// an abort (it is reset on entry to every run); the partially built script
// is discarded.
func (d *Differ) DiffScratchChecked(source, target *tree.Node, alloc *uri.Allocator, s *Scratch, cp Checkpoint) (*Result, error) {
	return d.DiffScratchProfiled(context.Background(), source, target, alloc, s, cp)
}

// DiffScratchProfiled is DiffScratchChecked carrying the context that
// profiler labels and trace regions propagate from when
// Options.ProfileLabels is set: the diff becomes a runtime/trace task and
// each phase runs under pprof.Do with a phase label, nested inside any
// labels already on ctx (the engine adds pair and worker). With
// ProfileLabels unset, ctx is ignored and this is exactly
// DiffScratchChecked. A nil ctx is treated as context.Background().
func (d *Differ) DiffScratchProfiled(ctx context.Context, source, target *tree.Node, alloc *uri.Allocator, s *Scratch, cp Checkpoint) (res *Result, err error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("truediff: %w", derrors.ErrNilTree)
	}
	began := time.Now()
	every := d.opts.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	r := &run{sch: d.sch, opts: d.opts, s: s, cp: cp, cpEvery: every, cpLeft: every}
	ctxSink := ExplainFromContext(ctx)
	if d.opts.Explain != nil || ctxSink != nil {
		r.explain = newExplainState()
	}
	defer func() {
		if p := recover(); p != nil {
			a, ok := p.(diffAbort)
			if !ok {
				panic(p)
			}
			res, err = nil, fmt.Errorf("truediff: diff aborted: %w", a.err)
		}
	}()
	inPhase, endTask := phaseRunner(ctx, d.opts.ProfileLabels)
	defer endTask()

	// Step 1 happened at tree construction: every node carries its
	// structure and literal hashes; the per-diff residue (allocator
	// derivation, schema validation, scratch reset) is the prepare phase.
	var prepErr error
	inPhase(telemetry.PhasePrepare, func() {
		if alloc == nil {
			alloc = uri.NewAllocator()
			tree.Walk(source, func(n *tree.Node) { alloc.Reserve(n.URI) })
		}
		if prepErr = d.checkSchema(source, r); prepErr != nil {
			return
		}
		if prepErr = d.checkSchema(target, r); prepErr != nil {
			return
		}
		s.Reset()
	})
	if prepErr != nil {
		return nil, prepErr
	}
	r.alloc = alloc
	// A diff that passed validation emits the full span: BeginDiff, one
	// Phase per step in order, EndDiff. Failed validation emits nothing.
	// A request-scoped tracer carried by ctx (the engine attaches one per
	// pair to synthesize phase spans) merges with the configured tracer.
	tr := d.opts.Tracer
	if ct := telemetry.TracerFromContext(ctx); ct != nil {
		tr = telemetry.MultiTracer(tr, ct)
	}
	if tr != nil {
		tr.BeginDiff(source.Size(), target.Size())
	}
	var mark time.Time
	s.phase(tr, telemetry.PhasePrepare, began, &mark)
	inPhase(telemetry.PhaseShares, func() { r.assignShares(source, target) }) // step 2
	s.phase(tr, telemetry.PhaseShares, mark, &mark)
	inPhase(telemetry.PhaseSelect, func() { r.assignSubtrees(target) }) // step 3
	s.phase(tr, telemetry.PhaseSelect, mark, &mark)
	var patched *tree.Node
	inPhase(telemetry.PhaseEmit, func() { // step 4
		patched = r.computeEdits(source, target, truechange.RootRef, sig.RootLink)
	})
	s.phase(tr, telemetry.PhaseEmit, mark, &mark)
	res = &Result{Script: s.buf.Script(), Patched: patched}
	if tr != nil {
		tr.EndDiff(res.Script.EditCount(), mark.Sub(began))
	}
	if r.explain != nil {
		ex := r.explain.finish(source, target)
		if d.opts.Explain != nil {
			d.opts.Explain.ExplainDiff(ex)
		}
		if ctxSink != nil {
			ctxSink.ExplainDiff(ex)
		}
	}
	return res, nil
}

// phase closes one phase span: it records the duration since start into
// the scratch, forwards it to the tracer, and advances *mark to now.
func (s *Scratch) phase(tr telemetry.Tracer, p telemetry.Phase, start time.Time, mark *time.Time) {
	now := time.Now()
	d := now.Sub(start)
	s.phases[p] = d
	if tr != nil {
		tr.Phase(p, d)
	}
	*mark = now
}

// checkSchema verifies every tag of the tree is declared in the differ's
// schema, so trees built against a different schema fail cleanly. A non-nil
// r threads the run's checkpoint through the validation walk, so even the
// prepare phase of a checked diff honours cancellation.
func (d *Differ) checkSchema(t *tree.Node, r *run) error {
	var bad sig.Tag
	tree.Walk(t, func(n *tree.Node) {
		if r != nil {
			r.tick()
		}
		if bad == "" && d.sch.Lookup(n.Tag) == nil {
			bad = n.Tag
		}
	})
	if bad != "" {
		return fmt.Errorf("truediff: %w: tree uses tag %s, which is not declared in schema %q",
			derrors.ErrSchemaMismatch, bad, d.sch.Name())
	}
	return nil
}

// InitialScript returns a well-typed initializing edit script (Definition
// 3.2) that builds target from the empty tree: loads for every node,
// bottom-up, followed by an attach to the pre-defined root.
func (d *Differ) InitialScript(target *tree.Node, alloc *uri.Allocator) (*Result, error) {
	if target == nil {
		return nil, fmt.Errorf("truediff: %w", derrors.ErrNilTree)
	}
	if err := d.checkSchema(target, nil); err != nil {
		return nil, err
	}
	if alloc == nil {
		alloc = uri.NewAllocator()
	}
	r := &run{sch: d.sch, opts: d.opts, s: NewScratch(), alloc: alloc}
	loaded := r.loadUnassigned(target)
	r.s.buf.Add(truechange.Attach{Node: ref(loaded), Link: sig.RootLink, Parent: truechange.RootRef})
	return &Result{Script: r.s.buf.Script(), Patched: loaded}, nil
}

// run is the per-invocation state of the algorithm: the configuration plus
// a borrowed Scratch. The assigned map in the scratch records the
// symmetric subtree assignment between source and target subtrees (paper:
// the assigned field of Diffable).
type run struct {
	sch   *sig.Schema
	opts  Options
	s     *Scratch
	alloc *uri.Allocator
	// external marks runs whose assignment came from an outside matching
	// (DiffWithMatching). truediff's own assignment guarantees that the
	// descendants of an assigned pair carry no assignments of their own
	// (deregisterSubtree maintains this), so assigned pairs can be morphed
	// wholesale by updateLits. External matchings give no such guarantee:
	// the morph must recurse node by node so descendants assigned across
	// the pair's boundary are detached and reused where they belong.
	external bool
	// cp is the cooperative abort hook of a checked run (nil otherwise);
	// tick polls it once per cpEvery processed nodes.
	cp      Checkpoint
	cpEvery int
	cpLeft  int
	// explain accumulates per-edit provenance; nil unless an ExplainSink is
	// installed, so the hot path pays one pointer check per hook.
	explain *explainState
}

// tick counts one processed node and, every cpEvery nodes of a checked
// run, polls the checkpoint. A checkpoint error unwinds the diffing
// recursion via diffAbort, which DiffScratchChecked recovers and returns.
func (r *run) tick() {
	if r.cp == nil {
		return
	}
	r.cpLeft--
	if r.cpLeft > 0 {
		return
	}
	r.cpLeft = r.cpEvery
	if err := r.cp(); err != nil {
		panic(diffAbort{err})
	}
}

// candidateKey returns the key under which subtrees share a reuse class.
func (r *run) candidateKey(n *tree.Node) string {
	if r.opts.Equiv == ExactOnly {
		return n.ExactHash()
	}
	return n.StructHash()
}

// preferKey returns the key used to select preferred (exact) candidates.
func (r *run) preferKey(n *tree.Node) string { return n.LitHash() }

// assign records a symmetric subtree assignment.
func (r *run) assign(src, dst *tree.Node) {
	r.s.assigned[src] = dst
	r.s.assigned[dst] = src
}

// unassign dissolves a symmetric subtree assignment.
func (r *run) unassign(src, dst *tree.Node) {
	delete(r.s.assigned, src)
	delete(r.s.assigned, dst)
}

// --- Step 2: find reuse candidates ------------------------------------

// assignShares simultaneously traverses source and target, assigning every
// subtree its share. Equivalent pairs at matching positions are assigned
// preemptively; along spines of equal tags only the spine node itself
// becomes available, while fully mismatched source subtrees register all
// their nodes as available resources (paper §4.2).
func (r *run) assignShares(src, dst *tree.Node) {
	r.tick()
	ss := r.s.reg.shareFor(r.candidateKey(src))
	ds := r.s.reg.shareFor(r.candidateKey(dst))
	if ss == ds {
		r.assign(src, dst) // preemptive: reuse in place, stop recursing
		if r.explain != nil {
			r.explain.preassigned(r, dst)
		}
		return
	}
	if src.Tag == dst.Tag {
		ss.registerAvailable(src, r.preferKey(src))
		for i := range src.Kids {
			r.assignShares(src.Kids[i], dst.Kids[i])
		}
		return
	}
	tree.Walk(src, func(n *tree.Node) {
		r.tick()
		r.s.reg.shareFor(r.candidateKey(n)).registerAvailable(n, r.preferKey(n))
	})
	tree.Walk(dst, func(n *tree.Node) {
		r.tick()
		r.s.reg.shareFor(r.candidateKey(n))
	})
}

// --- Step 3: select reuse candidates -----------------------------------

// nodeHeap is a max-heap of target subtrees ordered by height, with FIFO
// tie-breaking for determinism.
type nodeHeap struct {
	nodes []*tree.Node
	seq   []int
	next  int
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	if h.nodes[i].Height() != h.nodes[j].Height() {
		return h.nodes[i].Height() > h.nodes[j].Height()
	}
	return h.seq[i] < h.seq[j]
}
func (h *nodeHeap) Swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
}
func (h *nodeHeap) Push(x any) {
	h.nodes = append(h.nodes, x.(*tree.Node))
	h.seq = append(h.seq, h.next)
	h.next++
}
func (h *nodeHeap) Pop() any {
	n := h.nodes[len(h.nodes)-1]
	h.nodes[len(h.nodes)-1] = nil
	h.nodes = h.nodes[:len(h.nodes)-1]
	h.seq = h.seq[:len(h.seq)-1]
	return n
}

// reset empties the heap keeping its backing arrays.
func (h *nodeHeap) reset() {
	clear(h.nodes)
	h.nodes = h.nodes[:0]
	h.seq = h.seq[:0]
	h.next = 0
}

// assignSubtrees traverses the target's subtrees in highest-first order,
// acquiring available source subtrees greedily: first preferred (exact)
// candidates for a whole height level, then any remaining candidates.
// Unassigned subtrees descend into their children (paper §4.3).
func (r *run) assignSubtrees(target *tree.Node) {
	if r.opts.Order == FIFO {
		r.assignSubtreesFIFO(target)
		return
	}
	h := &r.s.heap
	heap.Push(h, target)
	for h.Len() > 0 {
		level := h.nodes[0].Height()
		var nexts []*tree.Node
		for h.Len() > 0 && h.nodes[0].Height() == level {
			nexts = append(nexts, heap.Pop(h).(*tree.Node))
		}
		unassigned := r.selectTrees(nexts, true)
		unassigned = r.selectTrees(unassigned, false)
		for _, n := range unassigned {
			for _, k := range n.Kids {
				heap.Push(h, k)
			}
		}
	}
}

// assignSubtreesFIFO is the ablation variant: plain breadth-first order,
// trying the preferred candidate then any candidate per node.
func (r *run) assignSubtreesFIFO(target *tree.Node) {
	queue := append(r.s.queue, target)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if r.s.assigned[n] != nil {
			continue
		}
		rest := r.selectTrees([]*tree.Node{n}, true)
		rest = r.selectTrees(rest, false)
		for _, u := range rest {
			queue = append(queue, u.Kids...)
		}
	}
}

// selectTrees tries to acquire a reuse candidate for each target subtree in
// trees, returning the subtrees that remain unassigned. With preferred set,
// only literally equivalent (exact) candidates are taken.
func (r *run) selectTrees(trees []*tree.Node, preferred bool) []*tree.Node {
	if preferred && r.opts.Equiv != StructuralWithLiteralPreference {
		// ExactOnly: candidates are exact by construction, the any-pass
		// suffices. StructuralNoPreference: skip the preference pass.
		return trees
	}
	var unassigned []*tree.Node
	for _, n := range trees {
		r.tick()
		if r.s.assigned[n] != nil {
			continue // preemptively assigned in step 2
		}
		s := r.s.reg.lookup(r.candidateKey(n))
		var src *tree.Node
		var scanned, avail int
		if s != nil {
			avail = len(s.member)
			if preferred {
				src, scanned = s.takePreferred(r.preferKey(n))
			} else {
				src, scanned = s.takeAny()
			}
		}
		if x := r.explain; x != nil {
			d := x.decisionFor(r, n, avail)
			d.considered += scanned
			if src != nil {
				d.acquired = true
				d.preferred = preferred
			}
		}
		if src == nil {
			unassigned = append(unassigned, n)
			continue
		}
		r.assign(src, n)
		r.deregisterSubtree(src, n)
	}
	return unassigned
}

// deregisterSubtree finalizes the acquisition of src by the target subtree
// dst. All strict descendants of src are withdrawn from their shares so
// they cannot be reused elsewhere, and stale assignments hanging off either
// side are dissolved (paper §4.3):
//
//   - a preemptively assigned descendant of src frees its target partner,
//     which is required again and will look for another candidate when its
//     height level is processed;
//   - a preemptively assigned descendant of dst frees its source partner,
//     which is no longer spoken for — it becomes available again, since dst
//     is now covered wholesale by src.
//
// The source side is processed first so that pairs nested inside both
// acquired trees are dissolved without resurrecting nodes of src.
// src itself was already removed from its share by take*.
func (r *run) deregisterSubtree(src, dst *tree.Node) {
	for _, kid := range src.Kids {
		tree.Walk(kid, func(n *tree.Node) {
			if s := r.s.reg.lookup(r.candidateKey(n)); s != nil {
				s.removeAvailable(n)
			}
			if partner := r.s.assigned[n]; partner != nil {
				if r.explain != nil {
					r.explain.revoke(partner)
				}
				r.unassign(n, partner)
			}
		})
	}
	for _, kid := range dst.Kids {
		tree.Walk(kid, func(n *tree.Node) {
			if partner := r.s.assigned[n]; partner != nil {
				r.unassign(partner, n)
				r.s.reg.shareFor(r.candidateKey(partner)).registerAvailable(partner, r.preferKey(partner))
			}
		})
	}
}

// --- Step 4: compute edit script ----------------------------------------

func ref(n *tree.Node) truechange.NodeRef {
	return truechange.NodeRef{Tag: n.Tag, URI: n.URI}
}

// kidArgs builds the kid argument list of a Load/Unload for node n.
func (r *run) kidArgs(n *tree.Node) []truechange.KidArg {
	g := r.sch.Lookup(n.Tag)
	if len(g.Kids) == 0 {
		return nil
	}
	args := make([]truechange.KidArg, len(g.Kids))
	for i, spec := range g.Kids {
		args[i] = truechange.KidArg{Link: spec.Link, URI: n.Kids[i].URI}
	}
	return args
}

// litArgs builds the literal argument list for node n.
func (r *run) litArgs(n *tree.Node) []truechange.LitArg {
	g := r.sch.Lookup(n.Tag)
	if len(g.Lits) == 0 {
		return nil
	}
	args := make([]truechange.LitArg, len(g.Lits))
	for i, spec := range g.Lits {
		args[i] = truechange.LitArg{Link: spec.Link, Value: n.Lits[i]}
	}
	return args
}

func litsEqual(a, b *tree.Node) bool {
	if len(a.Lits) != len(b.Lits) {
		return false
	}
	for i := range a.Lits {
		if !tree.LitEqual(a.Lits[i], b.Lits[i]) {
			return false
		}
	}
	return true
}

// computeEdits compares src against dst at the position (parent, link) in
// the source tree and emits the edits that transform src into dst,
// returning the patched subtree (paper §4.4). The patched subtree is
// always content-identical to dst (it differs only in URIs), which is what
// lets the rebuild reuse dst's digests via tree.Rebuilt instead of
// rehashing.
func (r *run) computeEdits(src, dst *tree.Node, parent truechange.NodeRef, link sig.Link) *tree.Node {
	r.tick()
	if p := r.s.assigned[src]; p != nil && p == dst {
		// src stays in place; it is morphed into dst (literal updates only
		// for the structurally equivalent pairs truediff's own assignment
		// produces; full recursion for externally matched pairs).
		return r.morphAssigned(src, dst)
	}
	if r.s.assigned[src] == nil && r.s.assigned[dst] == nil {
		if t := r.computeEditsRec(src, dst, parent, link); t != nil {
			return t
		}
	}
	// Replace the subtree src by dst: detach src, unload its unassigned
	// nodes, load dst's unassigned nodes (reusing assigned source
	// subtrees), and attach the result.
	detach := truechange.Detach{Node: ref(src), Link: link, Parent: parent}
	r.s.buf.Add(detach)
	if x := r.explain; x != nil {
		x.record(detach, r.detachProvenance(src, dst))
	}
	r.unloadUnassigned(src)
	t := r.loadUnassigned(dst)
	attach := truechange.Attach{Node: ref(t), Link: link, Parent: parent}
	r.s.buf.Add(attach)
	if x := r.explain; x != nil {
		x.record(attach, r.attachProvenance(dst))
	}
	return t
}

// detachProvenance explains why src is detached rather than kept in place
// opposite dst (the replace branch of computeEdits).
func (r *run) detachProvenance(src, dst *tree.Node) EditProvenance {
	p := EditProvenance{}
	switch {
	case r.s.assigned[src] != nil:
		// src was acquired as a reuse candidate by some other target
		// subtree; it cannot stay here.
		p.Reason = ReasonSourceClaimed
		partner := r.s.assigned[src]
		p.Detail = fmt.Sprintf("acquired by target %s subtree at height %d", partner.Tag, partner.Height())
		p.fill(r.explain.decisions[partner])
	case src.Tag != dst.Tag:
		p.Reason = ReasonTagMismatch
		p.Detail = fmt.Sprintf("%s≠%s", src.Tag, dst.Tag)
	case r.s.assigned[dst] != nil:
		// The traversal could have aligned the nodes, but dst acquired a
		// different source candidate during selection.
		p.Reason = ReasonMove
		p.Detail = "target position filled by a selected candidate"
		p.fill(r.explain.decisions[dst])
	default:
		p.Reason = ReasonLitMismatch
		p.Detail = "tags agree, literals differ"
	}
	return p
}

// attachProvenance explains what the subtree attached at dst's position is:
// a moved reuse candidate or a freshly built subtree.
func (r *run) attachProvenance(dst *tree.Node) EditProvenance {
	p := EditProvenance{}
	if r.s.assigned[dst] != nil {
		p.Reason = ReasonMove
		p.Detail = "reused source subtree selected for this target"
	} else {
		p.Reason = ReasonFreshSubtree
		p.Detail = "no candidate covered the whole subtree"
	}
	p.fill(r.explain.decisions[dst])
	return p
}

// computeEditsRec continues the simultaneous traversal through src and dst
// if their tags and literals coincide (with the UpdateOnLitMismatch
// ablation, differing literals are updated instead of failing). It returns
// nil if the nodes cannot be aligned.
func (r *run) computeEditsRec(src, dst *tree.Node, parent truechange.NodeRef, link sig.Link) *tree.Node {
	if src.Tag != dst.Tag {
		return nil
	}
	litsOK := litsEqual(src, dst)
	if !litsOK && !r.opts.UpdateOnLitMismatch {
		return nil
	}
	if !litsOK {
		up := truechange.Update{Node: ref(src), Old: r.litArgs(src), New: r.litArgs(dst)}
		r.s.buf.Add(up)
		if x := r.explain; x != nil {
			x.record(up, EditProvenance{Reason: ReasonLitUpdate,
				Detail: "traversal crossed a literal mismatch (UpdateOnLitMismatch)"})
		}
	}
	g := r.sch.Lookup(src.Tag)
	srcRef := ref(src)
	kids := make([]*tree.Node, len(src.Kids))
	for i := range src.Kids {
		kids[i] = r.computeEdits(src.Kids[i], dst.Kids[i], srcRef, g.Kids[i].Link)
	}
	return tree.Rebuilt(dst, r.alloc, src.URI, kids)
}

// morphAssigned transforms the assigned source subtree in place so it
// equals dst. For structurally equivalent pairs (the only kind truediff's
// own hash-based assignment produces) this reduces to literal updates; for
// externally supplied matchings (DiffWithMatching) the pair may differ
// below the root, so the traversal recurses into the children — the pair's
// tags are equal by construction, so the arities line up.
func (r *run) morphAssigned(src, dst *tree.Node) *tree.Node {
	if !r.external && src.StructHash() == dst.StructHash() {
		return r.updateLits(src, dst)
	}
	if !litsEqual(src, dst) {
		up := truechange.Update{Node: ref(src), Old: r.litArgs(src), New: r.litArgs(dst)}
		r.s.buf.Add(up)
		if x := r.explain; x != nil {
			x.record(up, EditProvenance{Reason: ReasonLitUpdate,
				Detail: "reconciles literals of an externally matched pair"})
		}
	}
	g := r.sch.Lookup(src.Tag)
	srcRef := ref(src)
	kids := make([]*tree.Node, len(src.Kids))
	for i := range src.Kids {
		kids[i] = r.computeEdits(src.Kids[i], dst.Kids[i], srcRef, g.Kids[i].Link)
	}
	return tree.Rebuilt(dst, r.alloc, src.URI, kids)
}

// updateLits reconciles the literals of the structurally equivalent pair
// (src, dst): it emits an Update for every node whose literals differ and
// returns the patched subtree, which keeps src's URIs and carries dst's
// literals.
func (r *run) updateLits(src, dst *tree.Node) *tree.Node {
	r.tick()
	if src.LitHash() == dst.LitHash() {
		return src // equal everywhere, reuse as is
	}
	kids := make([]*tree.Node, len(src.Kids))
	for i := range src.Kids {
		kids[i] = r.updateLits(src.Kids[i], dst.Kids[i])
	}
	if !litsEqual(src, dst) {
		up := truechange.Update{Node: ref(src), Old: r.litArgs(src), New: r.litArgs(dst)}
		r.s.buf.Add(up)
		if x := r.explain; x != nil {
			x.record(up, EditProvenance{Reason: ReasonLitUpdate,
				Detail: "reconciles literals of a reused structural candidate"})
		}
	}
	return tree.Rebuilt(dst, r.alloc, src.URI, kids)
}

// unloadUnassigned unloads the subtree src top-down, skipping subtrees that
// are assigned for reuse elsewhere: those stay behind as unattached roots,
// which their parent's Unload released.
func (r *run) unloadUnassigned(src *tree.Node) {
	r.tick()
	if r.s.assigned[src] != nil {
		return
	}
	un := truechange.Unload{Node: ref(src), Kids: r.kidArgs(src), Lits: r.litArgs(src)}
	r.s.buf.Add(un)
	if x := r.explain; x != nil {
		p := EditProvenance{CandidateKey: shortKey(r.candidateKey(src)), Height: src.Height()}
		if demand := x.demand[r.candidateKey(src)]; demand > 0 {
			p.Reason = ReasonLostRace
			p.Detail = fmt.Sprintf("class demanded by %d target subtree(s), satisfied by other candidates", demand)
		} else {
			p.Reason = ReasonNoDemand
			p.Detail = "no target subtree demanded this equivalence class"
		}
		x.record(un, p)
	}
	for _, k := range src.Kids {
		r.unloadUnassigned(k)
	}
}

// loadUnassigned produces the subtree dst in the source document: assigned
// subtrees are reused (with literal updates), everything else is loaded
// bottom-up with fresh URIs. It returns the resulting tree.
func (r *run) loadUnassigned(dst *tree.Node) *tree.Node {
	r.tick()
	if src := r.s.assigned[dst]; src != nil {
		return r.morphAssigned(src, dst)
	}
	kids := make([]*tree.Node, len(dst.Kids))
	for i, k := range dst.Kids {
		kids[i] = r.loadUnassigned(k)
	}
	n := tree.Rebuilt(dst, r.alloc, r.alloc.Fresh(), kids)
	ld := truechange.Load{Node: ref(n), Kids: r.kidArgs(n), Lits: r.litArgs(n)}
	r.s.buf.Add(ld)
	if x := r.explain; x != nil {
		p := EditProvenance{Reason: ReasonNoCandidate}
		if d := x.decisions[dst]; d != nil {
			p.fill(d)
			if d.considered > 0 {
				p.Detail = fmt.Sprintf("class exhausted after scanning %d candidate(s)", d.considered)
			} else {
				p.Detail = "equivalence class offered no source candidate"
			}
		} else {
			p.CandidateKey = shortKey(r.candidateKey(dst))
			p.Height = dst.Height()
			p.Detail = "no source subtree in this equivalence class"
		}
		x.record(ld, p)
	}
	return n
}
