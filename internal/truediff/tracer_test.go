package truediff

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/uri"
)

// traceEvent is one recorded tracer callback.
type traceEvent struct {
	kind  string // "begin", "phase", "end"
	phase telemetry.Phase
	src   int // begin: source size
	dst   int // begin: target size
	edits int // end: edit count
	wall  time.Duration
}

// recordingTracer appends every callback to events. It is deliberately
// not concurrency-safe: these tests drive one diff at a time.
type recordingTracer struct {
	events []traceEvent
}

func (r *recordingTracer) BeginDiff(src, dst int) {
	r.events = append(r.events, traceEvent{kind: "begin", src: src, dst: dst})
}

func (r *recordingTracer) Phase(p telemetry.Phase, d time.Duration) {
	r.events = append(r.events, traceEvent{kind: "phase", phase: p, wall: d})
}

func (r *recordingTracer) EndDiff(edits int, wall time.Duration) {
	r.events = append(r.events, traceEvent{kind: "end", edits: edits, wall: wall})
}

// TestTracerOrdering pins the tracer event contract: every diff emits
// BeginDiff, then each of the four phases exactly once in Phase order,
// then EndDiff — and nothing else.
func TestTracerOrdering(t *testing.T) {
	rec := &recordingTracer{}
	d := NewWithOptions(exp.Schema(), Options{Tracer: rec})
	s := NewScratch()

	const diffs = 5
	for i := 0; i < diffs; i++ {
		g := exp.NewGen(int64(400 + i))
		before := g.Tree(60 + 10*i)
		after := g.MutateN(before, 1+i)
		alloc := uri.NewAllocator()
		src := tree.Clone(before, alloc, tree.SHA256)
		dst := tree.Clone(after, alloc, tree.SHA256)

		start := len(rec.events)
		res, err := d.DiffScratch(src, dst, alloc, s)
		if err != nil {
			t.Fatalf("diff %d: %v", i, err)
		}
		span := rec.events[start:]
		if len(span) != 2+telemetry.NumPhases {
			t.Fatalf("diff %d emitted %d events, want %d: %+v", i, len(span), 2+telemetry.NumPhases, span)
		}
		if span[0].kind != "begin" || span[0].src != src.Size() || span[0].dst != dst.Size() {
			t.Errorf("diff %d: first event = %+v, want begin with sizes %d/%d", i, span[0], src.Size(), dst.Size())
		}
		for p := 0; p < telemetry.NumPhases; p++ {
			ev := span[1+p]
			if ev.kind != "phase" || ev.phase != telemetry.Phase(p) {
				t.Errorf("diff %d event %d = %+v, want phase %v", i, 1+p, ev, telemetry.Phase(p))
			}
		}
		last := span[len(span)-1]
		if last.kind != "end" || last.edits != res.Script.EditCount() {
			t.Errorf("diff %d: last event = %+v, want end with %d edits", i, last, res.Script.EditCount())
		}

		// The scratch's phase times must match what the tracer saw and be
		// bounded by the diff's wall time.
		times := s.PhaseTimes()
		for p := 0; p < telemetry.NumPhases; p++ {
			if times[p] != span[1+p].wall {
				t.Errorf("diff %d phase %v: scratch %v != tracer %v", i, telemetry.Phase(p), times[p], span[1+p].wall)
			}
		}
		if times.Total() > last.wall {
			t.Errorf("diff %d: phase total %v exceeds wall %v", i, times.Total(), last.wall)
		}
	}
	if want := diffs * (2 + telemetry.NumPhases); len(rec.events) != want {
		t.Fatalf("total events = %d, want %d", len(rec.events), want)
	}
}

// TestTracerSilentOnFailedValidation: diffs rejected before the algorithm
// runs (nil trees, schema mismatches) emit no tracer events at all.
func TestTracerSilentOnFailedValidation(t *testing.T) {
	rec := &recordingTracer{}
	b := exp.NewBuilder()
	n := b.MustN(exp.Num, int64(1))

	// Nil tree.
	d := NewWithOptions(exp.Schema(), Options{Tracer: rec})
	if _, err := d.Diff(nil, n, b.Alloc()); err == nil {
		t.Fatal("nil-source diff succeeded")
	}
	// Schema mismatch: a differ over an empty schema rejects exp trees.
	d2 := NewWithOptions(sig.NewSchema("empty"), Options{Tracer: rec})
	if _, err := d2.Diff(n, n, b.Alloc()); err == nil {
		t.Fatal("schema-mismatch diff succeeded")
	}
	if len(rec.events) != 0 {
		t.Fatalf("failed diffs emitted %d events, want 0: %+v", len(rec.events), rec.events)
	}
}

// TestScratchPhaseTimesReset: Reset zeroes the recorded phases, and each
// DiffScratch run starts from zero rather than accumulating.
func TestScratchPhaseTimesReset(t *testing.T) {
	d := New(exp.Schema())
	s := NewScratch()
	g := exp.NewGen(7)
	before := g.Tree(200)
	after := g.MutateN(before, 3)
	alloc := uri.NewAllocator()
	src := tree.Clone(before, alloc, tree.SHA256)
	dst := tree.Clone(after, alloc, tree.SHA256)

	if _, err := d.DiffScratch(src, dst, alloc, s); err != nil {
		t.Fatal(err)
	}
	if s.PhaseTimes().Total() == 0 {
		t.Fatal("no phase durations recorded")
	}
	s.Reset()
	if s.PhaseTimes() != (telemetry.PhaseTimes{}) {
		t.Fatalf("Reset left phase times %v", s.PhaseTimes())
	}
}
