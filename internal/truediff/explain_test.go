package truediff

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// checkAligned asserts the explanation annotates the script index by index
// with populated records.
func checkAligned(t *testing.T, ex *Explanation, script *truechange.Script) {
	t.Helper()
	if ex == nil {
		t.Fatal("no explanation delivered")
	}
	if len(ex.Edits) != script.Len() {
		t.Fatalf("explanation has %d records for %d edits", len(ex.Edits), script.Len())
	}
	for i, p := range ex.Edits {
		if p.Index != i {
			t.Fatalf("record %d carries index %d", i, p.Index)
		}
		if p.Op == "" || p.Node == "" || p.Reason == "" {
			t.Fatalf("record %d not populated: %+v", i, p)
		}
		if want := opName(script.Edits[i]); p.Op != want {
			t.Fatalf("record %d op = %q, edit is %q", i, p.Op, want)
		}
		if want := editNode(script.Edits[i]).String(); p.Node != want {
			t.Fatalf("record %d node = %q, edit says %q", i, p.Node, want)
		}
	}
}

func TestExplainAlignsWithScript(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Equiv: ExactOnly},
		{Equiv: StructuralNoPreference},
		{Order: FIFO},
		{UpdateOnLitMismatch: true},
	} {
		t.Run(fmt.Sprintf("equiv=%d,order=%d,upd=%v", opts.Equiv, opts.Order, opts.UpdateOnLitMismatch), func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				g := exp.NewGen(seed)
				src := g.Tree(80)
				dst := g.MutateN(src, 5)
				col := &ExplainCollector{}
				opts.Explain = col
				d := NewWithOptions(g.Schema(), opts)
				res, err := d.Diff(src, dst, g.Alloc())
				if err != nil {
					t.Fatal(err)
				}
				checkAligned(t, col.Last, res.Script)
			}
		})
	}
}

func TestExplainPaperIntroExample(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))

	col := &ExplainCollector{}
	d := NewWithOptions(b.Schema(), Options{Explain: col})
	res, err := d.Diff(src, dst, b.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	checkAligned(t, col.Last, res.Script)
	// The minimal script moves Sub#3 and Var#5: both detaches are forced
	// by the source subtree being claimed as a candidate elsewhere, both
	// attaches place selected (exact, hence preferred) candidates.
	for _, p := range col.Last.Edits[:2] {
		if p.Op != "detach" || p.Reason != ReasonSourceClaimed {
			t.Fatalf("detach provenance = %+v, want reason %s", p, ReasonSourceClaimed)
		}
	}
	for _, p := range col.Last.Edits[2:] {
		if p.Op != "attach" || p.Reason != ReasonMove {
			t.Fatalf("attach provenance = %+v, want reason %s", p, ReasonMove)
		}
		if !p.Preferred || p.Considered < 1 || p.CandidateKey == "" {
			t.Fatalf("attach provenance missing selection detail: %+v", p)
		}
	}
	if col.Last.Selected != 2 || col.Last.PreferredWins != 2 {
		t.Fatalf("selection summary = %+v, want 2 selected, 2 preferred", col.Last)
	}
	if col.Last.Preemptive < 1 {
		t.Fatalf("the shared Var c pair should be preemptively assigned: %+v", col.Last)
	}
}

func TestExplainDoesNotPerturbScript(t *testing.T) {
	g := exp.NewGen(21)
	src := g.Tree(120)
	dst := g.MutateN(src, 6)
	base := g.Alloc().Peek()
	mkAlloc := func() *uri.Allocator {
		a := uri.NewAllocator()
		a.Reserve(base)
		return a
	}
	plain := New(g.Schema())
	resPlain, err := plain.Diff(src, dst, mkAlloc())
	if err != nil {
		t.Fatal(err)
	}
	col := &ExplainCollector{}
	explained := NewWithOptions(g.Schema(), Options{Explain: col})
	resExpl, err := explained.Diff(src, dst, mkAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Script.String() != resExpl.Script.String() {
		t.Fatal("enabling Explain changed the emitted script")
	}
}

func TestExplainContextSink(t *testing.T) {
	g := exp.NewGen(5)
	src := g.Tree(40)
	dst := g.MutateN(src, 3)
	opt := &ExplainCollector{}
	ctxCol := &ExplainCollector{}
	d := NewWithOptions(g.Schema(), Options{Explain: opt})
	ctx := ContextWithExplain(context.Background(), ctxCol)
	res, err := d.DiffCtx(ctx, src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	checkAligned(t, opt.Last, res.Script)
	checkAligned(t, ctxCol.Last, res.Script)
}

func TestExplainDeterministicAcrossRuns(t *testing.T) {
	g := exp.NewGen(33)
	src := g.Tree(100)
	dst := g.MutateN(src, 5)
	d := New(g.Schema())
	base := g.Alloc().Peek()
	var first []byte
	for i := 0; i < 3; i++ {
		// A fresh allocator with the same base per run keeps load URIs —
		// and hence provenance node references — reproducible.
		alloc := uri.NewAllocator()
		alloc.Reserve(base)
		col := &ExplainCollector{}
		ctx := ContextWithExplain(context.Background(), col)
		if _, err := d.DiffScratchProfiled(ctx, src, dst, alloc, NewScratch(), nil); err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(col.Last)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf
		} else if string(first) != string(buf) {
			t.Fatalf("run %d produced different provenance:\n%s\nvs\n%s", i, first, buf)
		}
	}
}

func TestRootReplaceExplain(t *testing.T) {
	g := exp.NewGen(9)
	src := g.Tree(20)
	dst := g.Tree(20)
	col := &ExplainCollector{}
	d := NewWithOptions(g.Schema(), Options{Explain: col})
	res, err := d.RootReplace(src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	checkAligned(t, col.Last, res.Script)
	for _, p := range col.Last.Edits {
		if p.Reason != ReasonRootReplace {
			t.Fatalf("root-replace record has reason %s: %+v", p.Reason, p)
		}
	}
}

func TestExplainUnloadReasons(t *testing.T) {
	// Replace a subtree wholesale: the discarded nodes must carry a
	// no-demand or lost-race classification, never an empty reason.
	g := exp.NewGen(17)
	src := g.Tree(60)
	dst := g.MutateN(src, 8)
	col := &ExplainCollector{}
	d := NewWithOptions(g.Schema(), Options{Explain: col})
	res, err := d.Diff(src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	checkAligned(t, col.Last, res.Script)
	for _, p := range col.Last.Edits {
		if p.Op == "unload" && p.Reason != ReasonNoDemand && p.Reason != ReasonLostRace {
			t.Fatalf("unload record has reason %s: %+v", p.Reason, p)
		}
		if p.Op == "load" && p.Reason != ReasonNoCandidate {
			t.Fatalf("load record has reason %s: %+v", p.Reason, p)
		}
	}
}
