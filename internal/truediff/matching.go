package truediff

import (
	"fmt"

	"repro/internal/derrors"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// This file explores the direction the paper's §7 leaves open: "it may be
// possible to make the approach by Chawathe et al. type-safe. In
// particular, it may be possible to generate detach and attach edits
// instead of move edits, but to use their similarity scores. We have not
// explored this direction."
//
// DiffWithMatching does exactly that: it accepts an externally computed
// node matching — for instance from the Gumtree similarity matcher running
// on the same trees — and emits a well-typed truechange edit script that
// realizes it. Matched subtrees are kept (morphing their contents
// recursively), unmatched source material is unloaded, unmatched target
// material is loaded, and relocations become detach/attach pairs instead
// of moves, so every intermediate tree remains well-typed.

// MatchPair associates one source subtree with one target subtree.
type MatchPair struct {
	Src *tree.Node
	Dst *tree.Node
}

// DiffWithMatching generates a well-typed truechange script from the given
// matching instead of truediff's own hash-based subtree assignment. The
// matching must be one-to-one; pairs whose tags differ are dropped (a node
// cannot be morphed into a different constructor), as are pairs whose
// nodes do not belong to the given trees.
func (d *Differ) DiffWithMatching(src, dst *tree.Node, matches []MatchPair, alloc *uri.Allocator) (*Result, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("truediff: %w", derrors.ErrNilTree)
	}
	if alloc == nil {
		alloc = uri.NewAllocator()
		tree.Walk(src, func(n *tree.Node) { alloc.Reserve(n.URI) })
	}
	if err := d.checkSchema(src, nil); err != nil {
		return nil, err
	}
	if err := d.checkSchema(dst, nil); err != nil {
		return nil, err
	}
	inSrc := make(map[*tree.Node]bool, src.Size())
	tree.Walk(src, func(n *tree.Node) { inSrc[n] = true })
	inDst := make(map[*tree.Node]bool, dst.Size())
	tree.Walk(dst, func(n *tree.Node) { inDst[n] = true })

	r := &run{sch: d.sch, opts: d.opts, s: NewScratch(), alloc: alloc, external: true}
	for _, m := range matches {
		if m.Src == nil || m.Dst == nil || m.Src.Tag != m.Dst.Tag {
			continue
		}
		if !inSrc[m.Src] || !inDst[m.Dst] {
			continue
		}
		if r.s.assigned[m.Src] != nil || r.s.assigned[m.Dst] != nil {
			return nil, fmt.Errorf("truediff: %w: at %s/%s", derrors.ErrBadMatching, m.Src.URI, m.Dst.URI)
		}
		r.assign(m.Src, m.Dst)
	}
	patched := r.computeEdits(src, dst, truechange.RootRef, sig.RootLink)
	return &Result{Script: r.s.buf.Script(), Patched: patched}, nil
}
