// Package truediff implements the paper's structural diffing algorithm
// (Section 4). Given a source tree and a target tree over the same schema,
// Diff computes a concise, well-typed truechange edit script together with
// the patched tree, in four steps:
//
//  1. subtree equivalence relations, precomputed as cryptographic hashes on
//     the trees themselves (package tree);
//  2. subtree shares: structurally equivalent subtrees of source and target
//     are assigned the same share, and source subtrees register as
//     available resources (with equal subtrees assigned preemptively);
//  3. candidate selection: target subtrees acquire available source
//     subtrees greedily in highest-first order, preferring literally
//     equivalent (i.e. exact) copies;
//  4. edit computation: a simultaneous traversal emits detach/unload and
//     load/attach edits for changed regions and literal updates for reused
//     subtrees, with negative edits ordered before positive ones.
//
// The algorithm treats subtrees as linear resources: a source subtree is
// assigned to at most one target subtree, which is what makes the generated
// scripts well-typed under truechange's linear type system.
package truediff

import "repro/internal/tree"

// share manages all source subtrees of one equivalence class (one
// candidate-key value) that are still available for reuse, plus an index by
// preference key for selecting exact copies first (paper §4.2–4.3).
type share struct {
	key string

	// queue holds available trees in registration order; entries are
	// deleted lazily (removed stays authoritative). Registration order
	// makes candidate selection deterministic.
	queue []*tree.Node
	// member tracks current availability.
	member map[*tree.Node]bool
	// byPrefer indexes available trees by preference key (literal hash),
	// also with lazy deletion.
	byPrefer map[string][]*tree.Node
}

func newShare(key string) *share {
	return &share{
		key:      key,
		member:   make(map[*tree.Node]bool),
		byPrefer: make(map[string][]*tree.Node),
	}
}

// registerAvailable marks the source subtree n as an available resource of
// this share. Registering the same node twice is a no-op.
func (s *share) registerAvailable(n *tree.Node, prefKey string) {
	if s.member[n] {
		return
	}
	s.member[n] = true
	s.queue = append(s.queue, n)
	s.byPrefer[prefKey] = append(s.byPrefer[prefKey], n)
}

// removeAvailable withdraws n from the share (lazy deletion in the queues).
func (s *share) removeAvailable(n *tree.Node) {
	delete(s.member, n)
}

// takePreferred acquires an available tree whose preference key matches,
// or returns nil. The acquired tree is removed from the share. The second
// result is how many queue entries were scanned (including stale ones),
// feeding the explain layer's "candidates considered" provenance.
func (s *share) takePreferred(prefKey string) (*tree.Node, int) {
	q := s.byPrefer[prefKey]
	scanned := 0
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		scanned++
		if s.member[n] {
			s.byPrefer[prefKey] = q
			s.removeAvailable(n)
			return n, scanned
		}
	}
	if len(q) == 0 {
		delete(s.byPrefer, prefKey)
	} else {
		s.byPrefer[prefKey] = q
	}
	return nil, scanned
}

// takeAny acquires any available tree, or returns nil. The second result
// counts scanned queue entries, as for takePreferred.
func (s *share) takeAny() (*tree.Node, int) {
	scanned := 0
	for len(s.queue) > 0 {
		n := s.queue[0]
		s.queue = s.queue[1:]
		scanned++
		if s.member[n] {
			s.removeAvailable(n)
			return n, scanned
		}
	}
	return nil, scanned
}

// recycle empties the share for reuse by a later diff, keeping the
// allocated maps (and the queue's backing array) alive.
func (s *share) recycle() {
	s.key = ""
	clear(s.member)
	clear(s.byPrefer)
	clear(s.queue)
	s.queue = s.queue[:0]
}

// registry assigns shares to subtrees: two subtrees receive the same share
// iff their candidate keys agree (the paper's SubtreeRegistry, which uses a
// hash trie; a Go map over the hash provides the same constant-time
// behaviour). A registry is recyclable: reset returns its shares to a free
// list so repeated diffs through one Scratch amortize the map allocations.
type registry struct {
	shares map[string]*share
	free   []*share
}

func newRegistry() registry {
	return registry{shares: make(map[string]*share)}
}

// reset prepares the registry for the next diff, recycling every share.
func (r *registry) reset() {
	for _, s := range r.shares {
		s.recycle()
		r.free = append(r.free, s)
	}
	clear(r.shares)
}

// shareFor returns the share for candidate key, creating it on first use
// (drawing recycled shares from the free list when available).
func (r *registry) shareFor(key string) *share {
	s, ok := r.shares[key]
	if !ok {
		if n := len(r.free); n > 0 {
			s = r.free[n-1]
			r.free[n-1] = nil
			r.free = r.free[:n-1]
			s.key = key
		} else {
			s = newShare(key)
		}
		r.shares[key] = s
	}
	return s
}

// lookup returns the share for key, or nil if no subtree produced it.
func (r *registry) lookup(key string) *share {
	return r.shares[key]
}
