package truediff

import (
	"context"
	"runtime/pprof"
	"runtime/trace"

	"repro/internal/telemetry"
)

// TraceTaskName is the runtime/trace task type every profiled diff runs
// under; TraceRegionPrefix prefixes the per-phase region names
// ("truediff/prepare" … "truediff/emit"). Use them to filter a captured
// execution trace (go tool trace) down to diffing work.
const (
	TraceTaskName     = "truediff.diff"
	TraceRegionPrefix = "truediff/"
)

// PprofPhaseLabel is the pprof label key phase attribution is published
// under when Options.ProfileLabels is set; its values are the four
// telemetry.Phase names. The engine adds PprofPairLabel and
// PprofWorkerLabel around it.
const PprofPhaseLabel = "phase"

// ProfilePhaseHook, when non-nil, is called inside every labeled phase
// with the label-carrying context. Tests (here and in internal/engine)
// use it to assert — via pprof.ForLabels — that phase, pair, and worker
// labels actually reach the executing goroutine; production code never
// sets it. Guarded by no lock: set it before diffing starts and clear it
// after everything is done.
var ProfilePhaseHook func(ctx context.Context, p telemetry.Phase)

// phaseRunner returns the phase executor of one diff and the task
// terminator to defer. Unprofiled (the default), the executor just calls
// the phase body and the terminator is a no-op — no context, label, or
// trace machinery is touched. Profiled, the diff becomes a runtime/trace
// task and each phase body runs under pprof.Do with the phase label and
// inside a trace region, so CPU profiles and execution traces decompose
// by phase (and by whatever labels ctx already carries, e.g. the engine's
// pair and worker).
func phaseRunner(ctx context.Context, profiled bool) (inPhase func(telemetry.Phase, func()), endTask func()) {
	if !profiled {
		return func(_ telemetry.Phase, body func()) { body() }, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tctx, task := trace.NewTask(ctx, TraceTaskName)
	inPhase = func(p telemetry.Phase, body func()) {
		pprof.Do(tctx, pprof.Labels(PprofPhaseLabel, p.String()), func(lctx context.Context) {
			if hook := ProfilePhaseHook; hook != nil {
				hook(lctx, p)
			}
			trace.WithRegion(lctx, TraceRegionPrefix+p.String(), body)
		})
	}
	return inPhase, task.End
}
