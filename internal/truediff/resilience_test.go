package truediff

import (
	"context"
	"errors"
	"testing"

	"repro/internal/exp"
	"repro/internal/mtree"
	"repro/internal/truechange"
)

func TestCheckpointAbortsMidDiff(t *testing.T) {
	d := NewWithOptions(exp.Schema(), Options{CheckpointEvery: 8})
	b := exp.NewBuilder()
	src := b.MustN(exp.Num, int64(0))
	dst := b.MustN(exp.Num, int64(1))
	for i := 0; i < 200; i++ {
		src = b.MustN(exp.Add, src, b.MustN(exp.Num, int64(i)))
		dst = b.MustN(exp.Add, dst, b.MustN(exp.Num, int64(i+1)))
	}

	sentinel := errors.New("stop now")
	calls := 0
	cp := func() error {
		calls++
		if calls >= 3 {
			return sentinel
		}
		return nil
	}
	res, err := d.DiffScratchChecked(src, dst, nil, NewScratch(), cp)
	if res != nil || err == nil {
		t.Fatalf("DiffScratchChecked = (%v, %v), want abort", res, err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("abort error %v does not wrap the checkpoint error", err)
	}
	if calls != 3 {
		t.Fatalf("checkpoint polled %d times after abort, want exactly 3", calls)
	}
}

func TestCheckpointNilIsUnchecked(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	dst := b.MustN(exp.Add, b.MustN(exp.Num, int64(2)), b.MustN(exp.Num, int64(1)))
	d := New(exp.Schema())
	got, err := d.DiffScratchChecked(src, dst, nil, NewScratch(), nil)
	if err != nil {
		t.Fatalf("nil checkpoint diff failed: %v", err)
	}
	want, err := d.Diff(src, dst, nil)
	if err != nil {
		t.Fatalf("plain diff failed: %v", err)
	}
	if got.Script.String() != want.Script.String() {
		t.Fatal("checked diff with nil checkpoint produced a different script")
	}
}

func TestScratchReusableAfterAbort(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Num, int64(0))
	dst := b.MustN(exp.Num, int64(1))
	for i := 0; i < 64; i++ {
		src = b.MustN(exp.Add, src, b.MustN(exp.Num, int64(i)))
		dst = b.MustN(exp.Add, dst, b.MustN(exp.Num, int64(2*i)))
	}
	d := NewWithOptions(exp.Schema(), Options{CheckpointEvery: 4})
	s := NewScratch()

	abort := errors.New("abort")
	if _, err := d.DiffScratchChecked(src, dst, nil, s, func() error { return abort }); !errors.Is(err, abort) {
		t.Fatalf("expected abort, got %v", err)
	}

	// The same scratch must produce a correct script afterwards.
	res, err := d.DiffScratch(src, dst, nil, s)
	if err != nil {
		t.Fatalf("diff after abort: %v", err)
	}
	if err := truechange.WellTyped(d.sch, res.Script); err != nil {
		t.Fatalf("script after abort ill-typed: %v", err)
	}
	mt, err := mtree.FromTree(d.sch, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatalf("patch after abort: %v", err)
	}
	if !mt.EqualTree(dst) {
		t.Fatal("patched tree differs from target after scratch reuse")
	}
}

func TestDiffCtxCancellation(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Num, int64(0))
	dst := b.MustN(exp.Num, int64(1))
	for i := 0; i < 64; i++ {
		src = b.MustN(exp.Add, src, b.MustN(exp.Num, int64(i)))
		dst = b.MustN(exp.Add, dst, b.MustN(exp.Num, int64(i+7)))
	}
	d := NewWithOptions(exp.Schema(), Options{CheckpointEvery: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first poll must abort
	if _, err := d.DiffCtx(ctx, src, dst, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("DiffCtx on cancelled ctx = %v, want context.Canceled", err)
	}

	// A background context keeps the unchecked fast path and succeeds.
	if _, err := d.DiffCtx(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("DiffCtx on background ctx failed: %v", err)
	}
	if cp := CtxCheckpoint(context.Background()); cp != nil {
		t.Fatal("CtxCheckpoint(Background) should be nil (unchecked fast path)")
	}
}

func TestRootReplaceWellTypedAndPatches(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Num, int64(7)))
	dst := b.MustN(exp.Mul, b.MustN(exp.Var, "a"), b.MustN(exp.Num, int64(9)))

	d := New(exp.Schema())
	res, err := d.RootReplace(src, dst, b.Alloc())
	if err != nil {
		t.Fatalf("RootReplace: %v", err)
	}
	if err := truechange.WellTyped(d.sch, res.Script); err != nil {
		t.Fatalf("root-replace script ill-typed: %v", err)
	}
	// Maximally verbose: every source node unloaded, every target node
	// loaded, plus the root detach/attach.
	if got, want := res.Script.Len(), src.Size()+dst.Size()+2; got != want {
		t.Fatalf("script has %d operations, want %d", got, want)
	}
	mt, err := mtree.FromTree(d.sch, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatalf("patching root-replace script: %v", err)
	}
	if !mt.EqualTree(dst) {
		t.Fatalf("root-replace patch differs from target:\n%s\n%s", mt, dst)
	}
	if err := mt.CheckClosed(); err != nil {
		t.Fatalf("tree not closed after root replace: %v", err)
	}
}

func TestRootReplaceNilTrees(t *testing.T) {
	d := New(exp.Schema())
	b := exp.NewBuilder()
	n := b.MustN(exp.Num, int64(1))
	if _, err := d.RootReplace(nil, n, nil); err == nil {
		t.Fatal("RootReplace(nil, n) succeeded")
	}
	if _, err := d.RootReplace(n, nil, nil); err == nil {
		t.Fatal("RootReplace(n, nil) succeeded")
	}
}
