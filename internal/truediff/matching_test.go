package truediff

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/exp"
	"repro/internal/gumtree"
	"repro/internal/mtree"
	"repro/internal/tree"
	"repro/internal/truechange"
)

// Tests for the §7 exploration: type-safe truechange scripts generated
// from Gumtree's similarity-based matching (DiffWithMatching).

func gumtreeMatches(src, dst *tree.Node) []MatchPair {
	pairs := gumtree.MatchTyped(src, dst, gumtree.DefaultOptions())
	out := make([]MatchPair, len(pairs))
	for i, p := range pairs {
		out[i] = MatchPair{Src: p.Src, Dst: p.Dst}
	}
	return out
}

// verifyMatchingDiff checks well-typedness and correctness of a script
// generated from an external matching.
func verifyMatchingDiff(t *testing.T, d *Differ, src, dst *tree.Node, matches []MatchPair) *Result {
	t.Helper()
	res, err := d.DiffWithMatching(src, dst, matches, nil)
	if err != nil {
		t.Fatalf("DiffWithMatching: %v", err)
	}
	if err := truechange.WellTyped(d.sch, res.Script); err != nil {
		t.Fatalf("script from matching is ill-typed: %v\nsrc=%s\ndst=%s\nscript=%s",
			err, src, dst, res.Script)
	}
	mt, err := mtree.FromTree(d.sch, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Comply(res.Script); err != nil {
		t.Fatalf("compliance: %v\n%s", err, res.Script)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if !mt.EqualTree(dst) {
		t.Fatalf("patched ≠ target:\nscript=%s", res.Script)
	}
	if !tree.Equal(res.Patched, dst) {
		t.Fatal("returned patched tree wrong")
	}
	return res
}

func TestMatchingIntroExample(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"),
			b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))
	d := New(b.Schema())
	res := verifyMatchingDiff(t, d, src, dst, gumtreeMatches(src, dst))
	// Gumtree finds the two moves; the type-safe realization is the same
	// minimal 4-edit script truediff produces.
	if res.Script.EditCount() != 4 {
		t.Errorf("EditCount = %d, want 4:\n%s", res.Script.EditCount(), res.Script)
	}
	st := truechange.ComputeStats(res.Script)
	if st.Moves != 2 || st.Loads != 0 {
		t.Errorf("stats = %s", st)
	}
}

func TestMatchingEmptyMatchingRewritesEverything(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Sub, b.MustN(exp.Num, 3), b.MustN(exp.Num, 4))
	d := New(b.Schema())
	res := verifyMatchingDiff(t, d, src, dst, nil)
	st := truechange.ComputeStats(res.Script)
	if st.Loads != 3 || st.Unloads != 3 {
		t.Errorf("empty matching should rewrite all nodes: %s", st)
	}
}

func TestMatchingMorphsPartialPairs(t *testing.T) {
	// Gumtree's bottom-up phase matches containers whose children only
	// partially agree; the morph must recurse through the difference.
	b := exp.NewBuilder()
	src := b.MustN(exp.Call,
		b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Var, "x")), "f")
	dst := b.MustN(exp.Call,
		b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 99)), "g")
	d := New(b.Schema())
	matches := []MatchPair{
		{Src: src, Dst: dst},                                 // Call matched (labels differ)
		{Src: src.Kids[0], Dst: dst.Kids[0]},                 // Add matched (kids differ)
		{Src: src.Kids[0].Kids[0], Dst: dst.Kids[0].Kids[0]}, // Num(1)
	}
	res := verifyMatchingDiff(t, d, src, dst, matches)
	st := truechange.ComputeStats(res.Script)
	// f→g update at the Call, Var x replaced by Num 99.
	if st.Updates == 0 || st.Loads != 1 || st.Unloads != 1 {
		t.Errorf("morph shape wrong: %s\n%s", st, res.Script)
	}
}

func TestMatchingRejectsNonInjective(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	d := New(b.Schema())
	bad := []MatchPair{
		{Src: src.Kids[0], Dst: dst.Kids[0]},
		{Src: src.Kids[0], Dst: dst.Kids[1]},
	}
	if _, err := d.DiffWithMatching(src, dst, bad, nil); err == nil {
		t.Error("non-injective matching should be rejected")
	}
}

func TestMatchingDropsIncompatiblePairs(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Var, "x"))
	dst := b.MustN(exp.Mul, b.MustN(exp.Num, 1), b.MustN(exp.Var, "x"))
	d := New(b.Schema())
	// Add/Mul differ in tag: the pair is dropped, the kids survive.
	matches := []MatchPair{
		{Src: src, Dst: dst},
		{Src: src.Kids[0], Dst: dst.Kids[0]},
		{Src: src.Kids[1], Dst: dst.Kids[1]},
		{Src: nil, Dst: dst}, // nil pairs are ignored
	}
	res := verifyMatchingDiff(t, d, src, dst, matches)
	st := truechange.ComputeStats(res.Script)
	if st.Loads != 1 || st.Unloads != 1 || st.Moves != 2 {
		t.Errorf("root swap shape wrong: %s\n%s", st, res.Script)
	}
}

// TestMatchingPropertyRandom runs the full Gumtree-matching pipeline over
// random mutations and the Python corpus: every generated script must be
// well-typed and correct.
func TestMatchingPropertyRandom(t *testing.T) {
	d := New(exp.Schema())
	for seed := int64(0); seed < 12; seed++ {
		g := exp.NewGen(seed)
		src := g.Tree(50)
		for _, edits := range []int{1, 4} {
			dst := g.MutateN(src, edits)
			verifyMatchingDiff(t, d, src, dst, gumtreeMatches(src, dst))
		}
	}
}

func TestMatchingOnPythonCorpus(t *testing.T) {
	h := corpus.Generate(corpus.Options{
		Seed: 13, Files: 3, Commits: 10, MaxFilesPerCommit: 2,
		MinNodes: 150, MaxNodes: 450, MaxEditsPerFile: 3,
	})
	d := New(h.Factory.Schema())
	for i, fc := range h.Changes() {
		res := verifyMatchingDiff(t, d, fc.Before, fc.After, gumtreeMatches(fc.Before, fc.After))
		if res.Script.EditCount() > fc.Before.Size() {
			t.Errorf("change %d: matching-based script larger than the file", i)
		}
	}
}

// TestMatchingVsHashAssignment compares conciseness: Gumtree-matching-based
// scripts should be in the same ballpark as truediff's own.
func TestMatchingVsHashAssignment(t *testing.T) {
	h := corpus.Generate(corpus.Options{
		Seed: 14, Files: 3, Commits: 12, MaxFilesPerCommit: 2,
		MinNodes: 150, MaxNodes: 450, MaxEditsPerFile: 2,
	})
	d := New(h.Factory.Schema())
	totalHash, totalMatch := 0, 0
	for _, fc := range h.Changes() {
		own, err := d.Diff(fc.Before, fc.After, h.Factory.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		viaMatch := verifyMatchingDiff(t, d, fc.Before, fc.After, gumtreeMatches(fc.Before, fc.After))
		totalHash += own.Script.EditCount()
		totalMatch += viaMatch.Script.EditCount()
	}
	if totalMatch > totalHash*3 {
		t.Errorf("matching-based scripts much larger: %d vs %d", totalMatch, totalHash)
	}
	t.Logf("edit totals: truediff hash-based %d, gumtree-matching-based %d", totalHash, totalMatch)
}
