package truediff

import (
	"container/heap"
	"testing"

	"repro/internal/exp"
	"repro/internal/tree"
)

func TestShareRegisterAndTake(t *testing.T) {
	b := exp.NewBuilder()
	n1 := b.MustN(exp.Num, 1)
	n2 := b.MustN(exp.Num, 2)
	n3 := b.MustN(exp.Num, 1)

	s := newShare("k")
	s.registerAvailable(n1, n1.LitHash())
	s.registerAvailable(n2, n2.LitHash())
	s.registerAvailable(n3, n3.LitHash())
	s.registerAvailable(n1, n1.LitHash()) // duplicate registration is a no-op

	// Preferred lookup finds the exact-literal candidate.
	if got, _ := s.takePreferred(n2.LitHash()); got != n2 {
		t.Errorf("takePreferred = %v, want n2", got)
	}
	// n2 is consumed: a second preferred take for its key fails.
	if got, _ := s.takePreferred(n2.LitHash()); got != nil {
		t.Errorf("consumed candidate returned again: %v", got)
	}
	// takeAny pops in registration order, skipping consumed entries.
	if got, _ := s.takeAny(); got != n1 {
		t.Errorf("takeAny = %v, want n1", got)
	}
	if got, _ := s.takeAny(); got != n3 {
		t.Errorf("takeAny = %v, want n3", got)
	}
	if got, _ := s.takeAny(); got != nil {
		t.Errorf("exhausted share returned %v", got)
	}
}

func TestShareRemoveAvailable(t *testing.T) {
	b := exp.NewBuilder()
	n1 := b.MustN(exp.Num, 7)
	n2 := b.MustN(exp.Num, 7)
	s := newShare("k")
	s.registerAvailable(n1, n1.LitHash())
	s.registerAvailable(n2, n2.LitHash())
	s.removeAvailable(n1)
	if got, _ := s.takePreferred(n1.LitHash()); got != n2 {
		t.Errorf("preferred take after removal = %v, want n2", got)
	}
	if got, _ := s.takeAny(); got != nil {
		t.Errorf("take after exhaustion = %v", got)
	}
}

func TestShareReregistration(t *testing.T) {
	// A node removed from a share may be registered again (the undo path
	// of preemptive assignments); lazy deletion must not hide it.
	b := exp.NewBuilder()
	n := b.MustN(exp.Var, "x")
	s := newShare("k")
	s.registerAvailable(n, n.LitHash())
	s.removeAvailable(n)
	s.registerAvailable(n, n.LitHash())
	if got, _ := s.takeAny(); got != n {
		t.Errorf("re-registered node not available: %v", got)
	}
}

func TestRegistryShareIdentity(t *testing.T) {
	r := newRegistry()
	a := r.shareFor("h1")
	b := r.shareFor("h1")
	c := r.shareFor("h2")
	if a != b {
		t.Error("same key must return the same share")
	}
	if a == c {
		t.Error("different keys must return different shares")
	}
	if r.lookup("h1") != a || r.lookup("h3") != nil {
		t.Error("lookup wrong")
	}
}

func TestNodeHeapOrdering(t *testing.T) {
	g := exp.NewGen(1)
	leaf1 := g.Tree(1)
	leaf2 := g.Tree(1)
	big := g.Tree(40)
	h := &nodeHeap{}
	for _, n := range []*tree.Node{leaf1, big, leaf2} {
		heap.Push(h, n)
	}
	if got := heap.Pop(h).(*tree.Node); got != big {
		t.Error("tallest should pop first")
	}
	second := heap.Pop(h).(*tree.Node)
	third := heap.Pop(h).(*tree.Node)
	if second != leaf1 || third != leaf2 {
		t.Error("equal heights should pop in insertion order")
	}
	if h.Len() != 0 {
		t.Error("heap should be empty")
	}
}
