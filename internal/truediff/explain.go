package truediff

import (
	"context"
	"fmt"

	"repro/internal/tree"
	"repro/internal/truechange"
)

// Reason classifies why the differ emitted an edit: what about the
// source/target pair (or about candidate selection) forced the operation.
// Reasons are stable strings so they can be logged and asserted on.
type Reason string

const (
	// ReasonTagMismatch: the simultaneous traversal hit nodes with
	// different tags, so the source subtree is replaced wholesale.
	ReasonTagMismatch Reason = "tag-mismatch"
	// ReasonLitMismatch: tags agree but literals differ and the traversal
	// is not allowed to update across the node (the paper's rule), so the
	// subtree is replaced.
	ReasonLitMismatch Reason = "literal-mismatch"
	// ReasonSourceClaimed: the source subtree at this position was acquired
	// as a reuse candidate by a different target subtree, so it cannot stay
	// in place and is detached (it will reappear where its acquirer puts it).
	ReasonSourceClaimed Reason = "source-claimed-elsewhere"
	// ReasonMove: the attached subtree is a reused source candidate that was
	// selected for this target position (step 3) — a subtree move.
	ReasonMove Reason = "subtree-moved"
	// ReasonFreshSubtree: the attached subtree was built from fresh loads
	// (possibly with reused descendants), because no candidate covered the
	// whole target subtree.
	ReasonFreshSubtree Reason = "fresh-subtree"
	// ReasonNoCandidate: a Load was emitted because the target node's
	// equivalence class offered no (remaining) source candidate.
	ReasonNoCandidate Reason = "no-candidate"
	// ReasonNoDemand: an Unload was emitted because no target subtree ever
	// demanded the node's equivalence class during selection.
	ReasonNoDemand Reason = "no-demand"
	// ReasonLostRace: an Unload was emitted although the node's class was
	// demanded — the demand was satisfied by other candidates of the class.
	ReasonLostRace Reason = "candidate-not-selected"
	// ReasonLitUpdate: an Update reconciling the literals of a reused
	// (structurally equivalent) subtree with the target's literals.
	ReasonLitUpdate Reason = "literal-update"
	// ReasonRootReplace: part of a degradation script (RootReplace) that
	// rebuilds the whole tree without reuse.
	ReasonRootReplace Reason = "root-replace"
)

// EditProvenance records why one edit of a script was emitted and which
// candidate-selection decision produced it. Explanation.Edits is
// index-aligned with Script.Edits: provenance i annotates edit i.
type EditProvenance struct {
	// Index is the edit's position in Script.Edits.
	Index int `json:"index"`
	// Op names the edit operation (detach, attach, load, unload, update).
	Op string `json:"op"`
	// Node is the edit's subject, rendered as Tag#URI.
	Node string `json:"node"`
	// Reason classifies why the edit was emitted.
	Reason Reason `json:"reason"`
	// Detail is a human-readable elaboration of the reason.
	Detail string `json:"detail,omitempty"`
	// CandidateKey is the (truncated) equivalence-class key the decision was
	// made under: the structural hash, or the exact hash under ExactOnly.
	CandidateKey string `json:"candidate_key,omitempty"`
	// PreferKey is the (truncated) literal hash used to prefer exact copies.
	PreferKey string `json:"prefer_key,omitempty"`
	// Height is the subtree height at which the selection decision was made.
	Height int `json:"height,omitempty"`
	// Preferred reports that the preferred (literally exact) candidate won.
	Preferred bool `json:"preferred,omitempty"`
	// Preemptive reports that the pair was assigned during step 2 (equal
	// subtrees at matching positions) rather than by heap selection.
	Preemptive bool `json:"preemptive,omitempty"`
	// Considered is how many candidates selection scanned for this target
	// subtree (including entries removed by lazy deletion).
	Considered int `json:"considered,omitempty"`
	// Available is the number of candidates the class offered when this
	// target subtree first looked it up.
	Available int `json:"available,omitempty"`
}

// String renders the provenance as a one-line annotation.
func (p EditProvenance) String() string {
	s := fmt.Sprintf("%s %s: %s", p.Op, p.Node, p.Reason)
	if p.Detail != "" {
		s += " (" + p.Detail + ")"
	}
	if p.CandidateKey != "" {
		s += fmt.Sprintf(" [class %s", p.CandidateKey)
		if p.Preferred {
			s += ", exact"
		}
		if p.Preemptive {
			s += ", preemptive"
		}
		if p.Considered > 0 {
			s += fmt.Sprintf(", considered %d/%d", p.Considered, p.Available)
		}
		s += fmt.Sprintf(", height %d]", p.Height)
	}
	return s
}

// Explanation is the structured per-edit annotation of one diff: exactly
// one EditProvenance per script edit, in script order, plus summary counts
// of the selection phase.
type Explanation struct {
	// SourceSize and TargetSize are the node counts of the diffed trees.
	SourceSize int `json:"source_size"`
	TargetSize int `json:"target_size"`
	// Preemptive counts subtree pairs assigned during step 2.
	Preemptive int `json:"preemptive"`
	// Selected counts candidates acquired by heap selection (step 3).
	Selected int `json:"selected"`
	// PreferredWins counts selections where the exact candidate won.
	PreferredWins int `json:"preferred_wins"`
	// Revoked counts preemptive assignments dissolved because one side was
	// acquired wholesale by a larger reuse (paper §4.3).
	Revoked int `json:"revoked"`
	// Edits annotates Script.Edits index by index.
	Edits []EditProvenance `json:"edits"`
}

// ExplainSink receives the Explanation of every diff run by a Differ whose
// Options.Explain is set (or whose context carries a sink, see
// ContextWithExplain). Like a Tracer, a sink shared by concurrent
// goroutines must be concurrency-safe; a nil sink costs one pointer check
// per diff and one per emitted edit.
type ExplainSink interface {
	ExplainDiff(*Explanation)
}

// ExplainCollector is the trivial ExplainSink: it keeps the most recent
// Explanation. It is NOT concurrency-safe; use one per goroutine (the
// engine attaches one per pair via the context).
type ExplainCollector struct {
	Last *Explanation
}

// ExplainDiff implements ExplainSink.
func (c *ExplainCollector) ExplainDiff(e *Explanation) { c.Last = e }

// explainCtxKey carries a request-scoped ExplainSink through a context.
type explainCtxKey struct{}

// ContextWithExplain returns a context carrying sink; a diff run with that
// context (DiffScratchProfiled, DiffCtx, or the engine's per-pair context)
// delivers its Explanation to the sink in addition to Options.Explain.
func ContextWithExplain(ctx context.Context, sink ExplainSink) context.Context {
	return context.WithValue(ctx, explainCtxKey{}, sink)
}

// ExplainFromContext extracts the sink installed by ContextWithExplain.
func ExplainFromContext(ctx context.Context) ExplainSink {
	if ctx == nil {
		return nil
	}
	sink, _ := ctx.Value(explainCtxKey{}).(ExplainSink)
	return sink
}

// keyDigits is how many hex digits of a hash key provenance records show:
// enough to correlate decisions within one diff, short enough to read.
const keyDigits = 12

// shortKey renders a (binary) hash key as truncated hex.
func shortKey(key string) string {
	s := fmt.Sprintf("%x", key)
	if len(s) > keyDigits {
		s = s[:keyDigits]
	}
	return s
}

// selDecision records the selection outcome for one target subtree: how its
// candidate class was probed and whether a candidate was acquired.
type selDecision struct {
	key        string // candidate key (raw, not truncated)
	prefer     string // preference key (raw)
	height     int
	considered int  // candidates scanned across both passes
	available  int  // class size at first lookup
	acquired   bool // a source candidate was assigned
	preferred  bool // ...by the preferred (exact) pass
	preemptive bool // ...preemptively during step 2
	revoked    bool // a preemptive assignment was later dissolved
}

// explainState accumulates provenance during one diff run. It exists only
// when an ExplainSink is installed; every hook in the hot path is guarded
// by a single nil check.
type explainState struct {
	// decisions maps each target subtree that went through candidate
	// lookup (or was preemptively assigned) to its selection outcome.
	decisions map[*tree.Node]*selDecision
	// demand counts, per candidate key, how many distinct target subtrees
	// looked the class up during step 3 — the signal distinguishing
	// "no demand" from "lost the race" when explaining Unloads.
	demand map[string]int
	// provNeg and provPos mirror the edit buffer's negative/positive
	// halves, so the final Explanation aligns index by index with the
	// script (negative edits are ordered before positive ones).
	provNeg []EditProvenance
	provPos []EditProvenance
	revoked int
	// forced, when non-empty, overrides every recorded reason — used by
	// RootReplace, whose script performs no candidate selection at all.
	forced Reason
}

func newExplainState() *explainState {
	return &explainState{
		decisions: make(map[*tree.Node]*selDecision),
		demand:    make(map[string]int),
	}
}

// decisionFor returns the selection record for target subtree n, creating
// it on first lookup (counting the class demand once per subtree).
func (x *explainState) decisionFor(r *run, n *tree.Node, available int) *selDecision {
	if d := x.decisions[n]; d != nil {
		return d
	}
	key := r.candidateKey(n)
	d := &selDecision{
		key:       key,
		prefer:    r.preferKey(n),
		height:    n.Height(),
		available: available,
	}
	x.decisions[n] = d
	x.demand[key]++
	return d
}

// preassigned records the preemptive step-2 assignment of dst.
func (x *explainState) preassigned(r *run, dst *tree.Node) {
	x.decisions[dst] = &selDecision{
		key:        r.candidateKey(dst),
		prefer:     r.preferKey(dst),
		height:     dst.Height(),
		acquired:   true,
		preemptive: true,
	}
}

// revoke marks dst's preemptive assignment as dissolved; dst will look for
// another candidate when its height level is processed.
func (x *explainState) revoke(dst *tree.Node) {
	if d := x.decisions[dst]; d != nil && d.preemptive {
		d.revoked = true
		d.acquired = false
		x.revoked++
	}
}

// record appends the provenance p for edit e, routed to the buffer half e
// lands in so the final concatenation aligns with Script.Edits.
func (x *explainState) record(e truechange.Edit, p EditProvenance) {
	p.Op = opName(e)
	p.Node = editNode(e).String()
	if x.forced != "" {
		p.Reason = x.forced
		p.Detail = "degradation script rebuilds the tree without reuse"
	}
	if e.Negative() {
		x.provNeg = append(x.provNeg, p)
	} else {
		x.provPos = append(x.provPos, p)
	}
}

// fill copies a selection decision into the provenance record.
func (p *EditProvenance) fill(d *selDecision) {
	if d == nil {
		return
	}
	p.CandidateKey = shortKey(d.key)
	p.PreferKey = shortKey(d.prefer)
	p.Height = d.height
	p.Preferred = d.preferred
	p.Preemptive = d.preemptive
	p.Considered = d.considered
	p.Available = d.available
}

// finish assembles the Explanation: negative provenance first, then
// positive, mirroring Buffer.Script, with indices filled in.
func (x *explainState) finish(source, target *tree.Node) *Explanation {
	ex := &Explanation{
		SourceSize: source.Size(),
		TargetSize: target.Size(),
		Revoked:    x.revoked,
		Edits:      make([]EditProvenance, 0, len(x.provNeg)+len(x.provPos)),
	}
	ex.Edits = append(ex.Edits, x.provNeg...)
	ex.Edits = append(ex.Edits, x.provPos...)
	for i := range ex.Edits {
		ex.Edits[i].Index = i
	}
	for _, d := range x.decisions {
		if d.preemptive && d.acquired {
			ex.Preemptive++
		} else if d.acquired {
			ex.Selected++
			if d.preferred {
				ex.PreferredWins++
			}
		}
	}
	return ex
}

func opName(e truechange.Edit) string {
	switch e.(type) {
	case truechange.Detach:
		return "detach"
	case truechange.Attach:
		return "attach"
	case truechange.Load:
		return "load"
	case truechange.Unload:
		return "unload"
	case truechange.Update:
		return "update"
	}
	return "edit"
}

func editNode(e truechange.Edit) truechange.NodeRef {
	switch ed := e.(type) {
	case truechange.Detach:
		return ed.Node
	case truechange.Attach:
		return ed.Node
	case truechange.Load:
		return ed.Node
	case truechange.Unload:
		return ed.Node
	case truechange.Update:
		return ed.Node
	}
	return truechange.NodeRef{}
}
