package tree

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sig"
	"repro/internal/uri"
)

// testSchema builds the paper's expression schema locally (the shared
// package internal/exp depends on tree, so tests here define their own).
func testSchema() *sig.Schema {
	s := sig.NewSchema("tree-test")
	s.MustDeclare(sig.Sig{Tag: "Num", Lits: []sig.LitSpec{{Link: "n", Type: sig.IntLit}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "Var", Lits: []sig.LitSpec{{Link: "name", Type: sig.StringLit}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "Add", Kids: []sig.KidSpec{{Link: "e1", Sort: "Exp"}, {Link: "e2", Sort: "Exp"}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "Sub", Kids: []sig.KidSpec{{Link: "e1", Sort: "Exp"}, {Link: "e2", Sort: "Exp"}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "Stmt", Kids: []sig.KidSpec{{Link: "e", Sort: "Stmt"}}, Result: "Stmt"})
	return s
}

func newB(t *testing.T) *Builder {
	t.Helper()
	return NewBuilder(testSchema(), uri.NewAllocator())
}

func TestConstructionValidation(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	num, err := New(sch, alloc, "Num", nil, []any{int64(1)})
	if err != nil {
		t.Fatalf("Num: %v", err)
	}

	cases := []struct {
		name string
		tag  sig.Tag
		kids []*Node
		lits []any
	}{
		{"undeclared tag", "Nope", nil, nil},
		{"root tag", sig.RootTag, []*Node{num}, nil},
		{"wrong kid arity", "Add", []*Node{num}, nil},
		{"wrong lit arity", "Num", nil, nil},
		{"wrong lit type", "Num", nil, []any{"one"}},
		{"nil kid", "Add", []*Node{num, nil}, nil},
		{"wrong kid sort", "Stmt", []*Node{num}, nil},
	}
	for _, c := range cases {
		if _, err := New(sch, alloc, c.tag, c.kids, c.lits); err == nil {
			t.Errorf("%s: construction should fail", c.name)
		}
	}
}

func TestHeightSizeAndURIs(t *testing.T) {
	b := newB(t)
	tr := b.MustN("Add", b.MustN("Sub", b.MustN("Var", "a"), b.MustN("Var", "b")), b.MustN("Num", 7))
	if tr.Size() != 5 {
		t.Errorf("Size = %d, want 5", tr.Size())
	}
	if tr.Height() != 2 {
		t.Errorf("Height = %d, want 2", tr.Height())
	}
	seen := map[uri.URI]bool{}
	Walk(tr, func(n *Node) {
		if n.URI == uri.Root {
			t.Error("constructed node carries the root URI")
		}
		if seen[n.URI] {
			t.Errorf("duplicate URI %s", n.URI)
		}
		seen[n.URI] = true
	})
	if len(seen) != 5 {
		t.Errorf("distinct URIs = %d, want 5", len(seen))
	}
}

func TestStructuralEquivalenceIgnoresLiterals(t *testing.T) {
	b := newB(t)
	t1 := b.MustN("Add", b.MustN("Num", 1), b.MustN("Num", 2))
	t2 := b.MustN("Add", b.MustN("Num", 3), b.MustN("Num", 4))
	t3 := b.MustN("Sub", b.MustN("Num", 1), b.MustN("Num", 2))
	if !StructurallyEquivalent(t1, t2) {
		t.Error("Add(Num1,Num2) should be structurally equivalent to Add(Num3,Num4)")
	}
	if StructurallyEquivalent(t1, t3) {
		t.Error("Add should not be structurally equivalent to Sub")
	}
	if LiterallyEquivalent(t1, t2) {
		t.Error("different literals should not be literally equivalent")
	}
	if !LiterallyEquivalent(t1, t3) {
		t.Error("Add(1,2) and Sub(1,2) should be literally equivalent (tags ignored)")
	}
}

func TestEqualIffBothEquivalences(t *testing.T) {
	b := newB(t)
	t1 := b.MustN("Add", b.MustN("Var", "a"), b.MustN("Num", 2))
	t2 := b.MustN("Add", b.MustN("Var", "a"), b.MustN("Num", 2))
	t3 := b.MustN("Add", b.MustN("Var", "b"), b.MustN("Num", 2))
	if !Equal(t1, t2) {
		t.Error("identical trees should be Equal")
	}
	if t1.ExactHash() != t2.ExactHash() {
		t.Error("identical trees should share ExactHash")
	}
	if Equal(t1, t3) || t1.ExactHash() == t3.ExactHash() {
		t.Error("literal difference should break equality")
	}
	if Equal(t1, nil) || Equal(nil, t1) {
		t.Error("nil is only equal to nil")
	}
	if !Equal(nil, nil) {
		t.Error("nil equals nil")
	}
}

func TestLiteralHashDiscriminatesTypes(t *testing.T) {
	sch := sig.NewSchema("lits")
	sch.MustDeclare(sig.Sig{Tag: "L", Lits: []sig.LitSpec{{Link: "v", Type: sig.AnyLit}}, Result: "E"})
	alloc := uri.NewAllocator()
	mk := func(v any) *Node {
		n, err := New(sch, alloc, "L", nil, []any{v})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	vals := []any{"1", int64(1), 1.0, true, false, "true"}
	for i, a := range vals {
		for j, b := range vals {
			if i == j {
				continue
			}
			if mk(a).LitHash() == mk(b).LitHash() {
				t.Errorf("literals %#v and %#v hash equal", a, b)
			}
		}
	}
	if mk(int64(1)).LitHash() != mk(int64(1)).LitHash() {
		t.Error("equal literals should hash equal")
	}
}

func TestCloneIsEqualWithFreshURIs(t *testing.T) {
	b := newB(t)
	orig := b.MustN("Add", b.MustN("Sub", b.MustN("Var", "a"), b.MustN("Num", 1)), b.MustN("Num", 2))
	cl := Clone(orig, b.Alloc(), SHA256)
	if !Equal(orig, cl) {
		t.Fatal("clone should be Equal to the original")
	}
	if orig.StructHash() != cl.StructHash() || orig.LitHash() != cl.LitHash() {
		t.Error("clone hashes should agree with original")
	}
	uris := map[uri.URI]bool{}
	Walk(orig, func(n *Node) { uris[n.URI] = true })
	Walk(cl, func(n *Node) {
		if uris[n.URI] {
			t.Errorf("clone reuses URI %s", n.URI)
		}
	})
}

func TestFNVHashingAgreesOnEquivalences(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	b := NewBuilderHashed(sch, alloc, FNV64)
	t1 := b.MustN("Add", b.MustN("Num", 1), b.MustN("Num", 2))
	t2 := b.MustN("Add", b.MustN("Num", 9), b.MustN("Num", 8))
	if !StructurallyEquivalent(t1, t2) {
		t.Error("FNV: structural equivalence broken")
	}
	if LiterallyEquivalent(t1, t2) {
		t.Error("FNV: literal equivalence should fail here")
	}
	if len(t1.StructHash()) != 8 {
		t.Errorf("FNV hash length = %d, want 8", len(t1.StructHash()))
	}
}

func TestWalkOrders(t *testing.T) {
	b := newB(t)
	tr := b.MustN("Add", b.MustN("Var", "l"), b.MustN("Var", "r"))
	var pre, post []sig.Tag
	var preLits, postLits []any
	Walk(tr, func(n *Node) {
		pre = append(pre, n.Tag)
		preLits = append(preLits, n.Lits)
	})
	WalkPost(tr, func(n *Node) {
		post = append(post, n.Tag)
		postLits = append(postLits, n.Lits)
	})
	_ = preLits
	_ = postLits
	if len(pre) != 3 || pre[0] != "Add" {
		t.Errorf("preorder = %v", pre)
	}
	if len(post) != 3 || post[2] != "Add" {
		t.Errorf("postorder = %v", post)
	}
	if Count(tr) != 3 {
		t.Errorf("Count = %d", Count(tr))
	}
}

func TestStringRendering(t *testing.T) {
	b := newB(t)
	tr := b.MustN("Add", b.MustN("Var", "a"), b.MustN("Num", 1))
	s := tr.String()
	for _, part := range []string{"Add", "Var", `"a"`, "Num", "1", "#"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q lacks %q", s, part)
		}
	}
	labeled := tr.StringIn(testSchema())
	if !strings.Contains(labeled, "name=") || !strings.Contains(labeled, "n=") {
		t.Errorf("StringIn() = %q lacks literal labels", labeled)
	}
}

func TestBuilderErrorHandling(t *testing.T) {
	b := newB(t)
	n := b.N("Add", b.N("Num", 1)) // arity error
	if n != nil {
		t.Error("builder should return nil on error")
	}
	if b.Err() == nil {
		t.Fatal("builder should record the error")
	}
	if b.N("Num", 1) != nil {
		t.Error("builder should stay failed after an error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustN should panic on a failed builder")
		}
	}()
	fresh := newB(t)
	fresh.MustN("Add", fresh.N("Num", 1))
}

func TestBuilderIntConvenience(t *testing.T) {
	b := newB(t)
	n := b.MustN("Num", 7) // plain int should convert to int64
	if n.Lits[0] != int64(7) {
		t.Errorf("lit = %#v, want int64(7)", n.Lits[0])
	}
}

func TestNewWithURIPreservesAndReserves(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	n, err := NewWithURI(sch, alloc, 100, "Num", nil, []any{int64(1)}, SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if n.URI != 100 {
		t.Errorf("URI = %s, want #100", n.URI)
	}
	if f := alloc.Fresh(); f <= 100 {
		t.Errorf("allocator did not reserve past 100: next = %s", f)
	}
}

// Property: for random pairs of values, structural equivalence is decided
// purely by shape and literal equivalence purely by literals.
func TestQuickHashProperties(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	mkLeaf := func(v int64) *Node {
		n, err := New(sch, alloc, "Num", nil, []any{v})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	prop := func(a, b int64) bool {
		x := mkLeaf(a)
		y := mkLeaf(b)
		// Always structurally equivalent; literally equivalent iff a == b.
		return StructurallyEquivalent(x, y) && (LiterallyEquivalent(x, y) == (a == b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: hashing is deterministic — rebuilding the same shape yields the
// same hashes regardless of URIs.
func TestQuickHashDeterminism(t *testing.T) {
	sch := testSchema()
	prop := func(vals []int64) bool {
		if len(vals) == 0 {
			vals = []int64{0}
		}
		build := func() *Node {
			alloc := uri.NewAllocator()
			cur, err := New(sch, alloc, "Num", nil, []any{vals[0]})
			if err != nil {
				return nil
			}
			for _, v := range vals[1:] {
				leaf, err := New(sch, alloc, "Num", nil, []any{v})
				if err != nil {
					return nil
				}
				cur, err = New(sch, alloc, "Add", []*Node{cur, leaf}, nil)
				if err != nil {
					return nil
				}
			}
			return cur
		}
		x, y := build(), build()
		return x != nil && y != nil && x.StructHash() == y.StructHash() && x.LitHash() == y.LitHash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
