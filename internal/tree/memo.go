package tree

import (
	"fmt"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/uri"
)

// This file implements cross-diff digest reuse, the hashing half of the
// batch engine's amortization strategy (ROADMAP: corpus-scale workloads).
// Subtree hashing dominates truediff's cost (paper §6 attributes most of
// the running time to tree preparation), yet across a stream of diffs the
// same subtrees are hashed over and over: unchanged files recur commit
// after commit, and idiomatic code repeats whole sub-expressions. Two
// mechanisms avoid the repeated work:
//
//   - a DigestMemo caches digests keyed by their exact hash input, so a
//     subtree whose (tag, kid digests) or (literals, kid digests) were
//     already hashed — in any earlier tree sharing the memo — reuses the
//     cached digest instead of recomputing it;
//   - Rebuilt constructs a node content-identical to an existing template
//     node and copies the template's digests outright, which the differ
//     uses when assembling patched trees (every patched node is
//     content-identical to its target counterpart by construction);
//   - CloneKeepDigests extends the same observation to whole trees that
//     already carry digests of the desired kind: digests never depend on
//     URIs, so a re-numbered copy keeps them verbatim (the engine admits
//     pre-hashed trees into its store this way, and HashedWith tells it
//     when that is sound).

// memoShards is the number of lock stripes in a DigestMemo. Striping keeps
// concurrent engine workers from serializing on one mutex.
const memoShards = 32

// DigestMemo is a concurrency-safe cache of subtree digests keyed by their
// hash pre-image. One memo is meant to be shared across many trees and many
// diffs (the engine owns one per schema); the namespace string partitions
// keys so memos fed by different schemas or hash kinds cannot collide.
type DigestMemo struct {
	namespace string
	seed      maphash.Seed
	shards    [memoShards]memoShard
	hits      atomic.Uint64
	misses    atomic.Uint64
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]string
}

// NewDigestMemo returns an empty memo. The namespace is mixed into every
// key; use a schema fingerprint (plus hash kind) so one process can run
// memos for several tree languages side by side.
func NewDigestMemo(namespace string) *DigestMemo {
	dm := &DigestMemo{namespace: namespace, seed: maphash.MakeSeed()}
	for i := range dm.shards {
		dm.shards[i].m = make(map[string]string)
	}
	return dm
}

// lookup returns the cached digest for key, or computes it via fresh,
// stores it, and returns it. Hit/miss counters feed the engine's Snapshot.
func (dm *DigestMemo) lookup(key string, fresh func() string) string {
	s := &dm.shards[maphash.String(dm.seed, key)%memoShards]
	s.mu.Lock()
	if d, ok := s.m[key]; ok {
		s.mu.Unlock()
		dm.hits.Add(1)
		return d
	}
	s.mu.Unlock()
	// Compute outside the lock: digesting is the expensive part, and a
	// duplicate computation by a racing worker is harmless (same value).
	d := fresh()
	s.mu.Lock()
	s.m[key] = d
	s.mu.Unlock()
	dm.misses.Add(1)
	return d
}

// Stats returns the cumulative hit and miss counts.
func (dm *DigestMemo) Stats() (hits, misses uint64) {
	return dm.hits.Load(), dm.misses.Load()
}

// Len returns the number of cached digests.
func (dm *DigestMemo) Len() int {
	n := 0
	for i := range dm.shards {
		s := &dm.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// structKey builds the memo key for n's structure digest: the namespace
// followed by the exact pre-image of hashStructure (tag and kid structure
// digests, length-prefixed). Kids must already carry their digests.
func (dm *DigestMemo) structKey(n *Node) string {
	b := make([]byte, 0, len(dm.namespace)+2+len(n.Tag)+len(n.Kids)*34)
	b = append(b, dm.namespace...)
	b = append(b, 's')
	b = appendLenStr(b, string(n.Tag))
	for _, k := range n.Kids {
		b = appendLenStr(b, k.structHash)
	}
	return string(b)
}

// litKey builds the memo key for n's literal digest (the pre-image of
// hashLiterals: literal values and kid literal digests).
func (dm *DigestMemo) litKey(n *Node) string {
	b := make([]byte, 0, len(dm.namespace)+2+len(n.Lits)*12+len(n.Kids)*34)
	b = append(b, dm.namespace...)
	b = append(b, 'l')
	for _, l := range n.Lits {
		b = appendLit(b, l)
	}
	for _, k := range n.Kids {
		b = appendLenStr(b, k.litHash)
	}
	return string(b)
}

// CloneMemo is Clone with digest reuse: the copy's digests are drawn from
// the memo when their pre-images were seen before, and computed (then
// cached) otherwise. The clone is identical to Clone's output; only the
// hashing work differs. Safe for concurrent use with a shared memo as long
// as alloc is not shared.
func CloneMemo(n *Node, alloc *uri.Allocator, kind HashKind, memo *DigestMemo) *Node {
	if memo == nil {
		return Clone(n, alloc, kind)
	}
	kids := make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = CloneMemo(k, alloc, kind, memo)
	}
	c := &Node{
		Tag:  n.Tag,
		URI:  alloc.Fresh(),
		Kids: kids,
		Lits: append([]any(nil), n.Lits...),
	}
	h, sz := 0, 1
	for _, k := range kids {
		if k.height+1 > h {
			h = k.height + 1
		}
		sz += k.size
	}
	c.height, c.size = h, sz
	c.structHash = memo.lookup(memo.structKey(c), func() string { return hashStructure(c, kind) })
	c.litHash = memo.lookup(memo.litKey(c), func() string { return hashLiterals(c, kind) })
	return c
}

// Rebuilt constructs a node with the given URI, kids, and the tag and
// literals of the template node like, copying like's digests instead of
// recomputing them. It is valid only when the result is content-identical
// to like: same tag, equal literal values, and kids whose digests equal
// like's kids' digests. The differ satisfies this by construction when it
// reassembles patched trees — each patched subtree is content-identical to
// its target counterpart — which makes rehashing provably redundant there.
// The URI is reserved in alloc so future allocations cannot collide.
func Rebuilt(like *Node, alloc *uri.Allocator, u uri.URI, kids []*Node) *Node {
	alloc.Reserve(u)
	return &Node{
		Tag:        like.Tag,
		URI:        u,
		Kids:       kids,
		Lits:       append([]any(nil), like.Lits...),
		height:     like.height,
		size:       like.size,
		structHash: like.structHash,
		litHash:    like.litHash,
	}
}

// HashedWith reports whether n carries digests of the given kind. A node
// does not record the algorithm its digests were computed with, but the two
// kinds have distinct digest sizes (32 bytes for SHA-256, 8 for FNV-64), so
// the length identifies the kind unambiguously.
func HashedWith(n *Node, kind HashKind) bool {
	want := 8
	if kind == SHA256 {
		want = 32
	}
	return len(n.structHash) == want && len(n.litHash) == want
}

// CloneKeepDigests deep-copies the tree with fresh URIs from alloc, copying
// the existing digests instead of recomputing them. Digests are functions of
// structure and literals only — never URIs — so the copy's digests are the
// original's by construction. Valid only when n already carries digests of
// the desired kind (check with HashedWith); the engine uses it to admit
// pre-hashed trees into its store without paying for hashing at all.
func CloneKeepDigests(n *Node, alloc *uri.Allocator) *Node {
	kids := make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = CloneKeepDigests(k, alloc)
	}
	return &Node{
		Tag:        n.Tag,
		URI:        alloc.Fresh(),
		Kids:       kids,
		Lits:       append([]any(nil), n.Lits...),
		height:     n.height,
		size:       n.size,
		structHash: n.structHash,
		litHash:    n.litHash,
	}
}

// appendLenStr appends s length-prefixed, mirroring hasher.str so memo keys
// are unambiguous concatenations.
func appendLenStr(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...)
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendLit appends a literal with the same type discriminators as
// hasher.lit.
func appendLit(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		b = append(b, 's')
		return appendLenStr(b, x)
	case int64:
		b = append(b, 'i')
		return appendU64(b, uint64(x))
	case float64:
		b = append(b, 'f')
		return appendU64(b, math.Float64bits(x))
	case bool:
		b = append(b, 'b')
		if x {
			return appendU64(b, 1)
		}
		return appendU64(b, 0)
	default:
		b = append(b, '?')
		return appendLenStr(b, fmt.Sprint(v))
	}
}
