package tree

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sig"
	"repro/internal/uri"
)

func boolSchema() *sig.Schema {
	s := testSchema()
	s.MustDeclare(sig.Sig{Tag: "Flag", Lits: []sig.LitSpec{{Link: "b", Type: sig.BoolLit}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "F", Lits: []sig.LitSpec{{Link: "v", Type: sig.FloatLit}}, Result: "Exp"})
	return s
}

func TestSExprRoundTrip(t *testing.T) {
	sch := boolSchema()
	alloc := uri.NewAllocator()
	b := NewBuilder(sch, alloc)
	trees := []*Node{
		b.MustN("Num", 42),
		b.MustN("Var", "hello world"),
		b.MustN("Var", `quote " and \ backslash`),
		b.MustN("Flag", true),
		b.MustN("Flag", false),
		b.MustN("F", 2.5),
		b.MustN("F", 100.0),
		b.MustN("Add",
			b.MustN("Sub", b.MustN("Var", "a"), b.MustN("Num", -7)),
			b.MustN("Add", b.MustN("Num", 0), b.MustN("Var", "b"))),
	}
	for _, orig := range trees {
		enc := EncodeSExpr(orig)
		back, err := DecodeSExpr(enc, sch, alloc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if !Equal(orig, back) {
			t.Fatalf("round trip changed tree: %q\norig %s\nback %s", enc, orig, back)
		}
	}
}

// Special float values must survive the text format: NaN and ±Inf format
// as words (no ".0" marker, which would make them unparseable) and -0
// must keep its sign. Equality here is LitEqual-based, so a NaN that came
// back as a different value would fail.
func TestSExprRoundTripSpecialFloats(t *testing.T) {
	sch := boolSchema()
	alloc := uri.NewAllocator()
	b := NewBuilder(sch, alloc)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)} {
		orig := b.MustN("F", v)
		enc := EncodeSExpr(orig)
		back, err := DecodeSExpr(enc, sch, alloc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if !Equal(orig, back) {
			t.Fatalf("round trip changed value: %q decoded to %#v", enc, back.Lits[0])
		}
	}
}

func TestSExprFormat(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	b := NewBuilder(sch, alloc)
	tr := b.MustN("Add", b.MustN("Var", "a"), b.MustN("Num", 1))
	if got := EncodeSExpr(tr); got != `(Add (Var "a") (Num 1))` {
		t.Errorf("sexpr = %q", got)
	}
}

func TestSExprDecodeWhitespace(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	n, err := DecodeSExpr("\n  ( Add\t(Var \"x\")\n (Num 3) )  \n", sch, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if n.Tag != "Add" || n.Kids[1].Lits[0] != int64(3) {
		t.Errorf("decoded %s", n)
	}
}

func TestSExprDecodeErrors(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	bad := []string{
		"",
		"Add",
		"(",
		"()",
		"(Add (Var \"a\"))",        // arity error from schema
		"(Nope)",                   // undeclared tag
		"(Num 1) trailing",         // trailing input
		"(Var \"unterminated)",     // unterminated string
		"(Num zzz)",                // bad literal
		"(Flag #x)",                // bad boolean (undeclared tag too)
		"(Add (Var \"a\") (Num 1)", // unterminated tree
	}
	for _, src := range bad {
		if _, err := DecodeSExpr(src, sch, alloc); err == nil {
			t.Errorf("decode %q should fail", src)
		}
	}
}

func TestEncodeDOT(t *testing.T) {
	sch := testSchema()
	alloc := uri.NewAllocator()
	b := NewBuilder(sch, alloc)
	tr := b.MustN("Add", b.MustN("Var", "a"), b.MustN("Num", 1))
	dot := EncodeDOT(tr, sch, map[uri.URI]bool{tr.Kids[0].URI: true})
	for _, want := range []string{"digraph tree", "Add", "label=\"e1\"", "label=\"e2\"", "peripheries=2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot lacks %q:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "->") != 2 {
		t.Errorf("edges = %d, want 2", strings.Count(dot, "->"))
	}
}
