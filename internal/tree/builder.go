package tree

import (
	"fmt"

	"repro/internal/sig"
	"repro/internal/uri"
)

// Builder constructs trees against a fixed schema and URI allocator with a
// compact call syntax, collecting the first error instead of returning one
// per call. It is convenient for tests, examples, and generated corpora:
//
//	b := tree.NewBuilder(sch, uri.NewAllocator())
//	t := b.N("Add", b.N("Var", "x"), b.N("Num", int64(1)))
//	if err := b.Err(); err != nil { ... }
type Builder struct {
	sch   *sig.Schema
	alloc *uri.Allocator
	kind  HashKind
	err   error
}

// NewBuilder returns a builder over the schema using SHA-256 hashing.
func NewBuilder(sch *sig.Schema, alloc *uri.Allocator) *Builder {
	return &Builder{sch: sch, alloc: alloc, kind: SHA256}
}

// NewBuilderHashed returns a builder with an explicit hash algorithm.
func NewBuilderHashed(sch *sig.Schema, alloc *uri.Allocator, kind HashKind) *Builder {
	return &Builder{sch: sch, alloc: alloc, kind: kind}
}

// Schema returns the builder's schema.
func (b *Builder) Schema() *sig.Schema { return b.sch }

// Alloc returns the builder's URI allocator.
func (b *Builder) Alloc() *uri.Allocator { return b.alloc }

// Err returns the first construction error, or nil.
func (b *Builder) Err() error { return b.err }

// N builds a node with the given tag. Arguments of type *Node become kids
// (in signature order); all other arguments become literals (in signature
// order). On error, N records it and returns nil; subsequent calls accept
// nil kids silently so one failure does not cascade into panics.
func (b *Builder) N(tag sig.Tag, args ...any) *Node {
	if b.err != nil {
		return nil
	}
	var kids []*Node
	var lits []any
	for _, a := range args {
		switch x := a.(type) {
		case *Node:
			if x == nil {
				return nil // an earlier N already recorded the error
			}
			kids = append(kids, x)
		case int:
			lits = append(lits, int64(x)) // convenience: untyped ints
		default:
			lits = append(lits, a)
		}
	}
	n, err := NewHashed(b.sch, b.alloc, tag, kids, lits, b.kind)
	if err != nil {
		b.err = fmt.Errorf("builder: %w", err)
		return nil
	}
	return n
}

// MustN is N but panics on a construction error. Useful in table-driven
// tests where failure should abort immediately.
func (b *Builder) MustN(tag sig.Tag, args ...any) *Node {
	n := b.N(tag, args...)
	if b.err != nil {
		panic(b.err)
	}
	return n
}
