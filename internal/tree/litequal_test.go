package tree

import (
	"math"
	"testing"
)

// LitEqual must agree with the literal hash (which folds float64 through
// math.Float64bits): bit-identical NaNs are equal, +0 and -0 are not, and
// non-float literals compare with ==.
func TestLitEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b any
		want bool
	}{
		{"nan-nan", math.NaN(), math.NaN(), true},
		{"inf-inf", math.Inf(1), math.Inf(1), true},
		{"inf-neginf", math.Inf(1), math.Inf(-1), false},
		{"zero-negzero", 0.0, math.Copysign(0, -1), false},
		{"negzero-negzero", math.Copysign(0, -1), math.Copysign(0, -1), true},
		{"float-float", 1.5, 1.5, true},
		{"float-other", 1.5, 2.5, false},
		{"float-vs-string", 1.5, "1.5", false},
		{"string-string", "a", "a", true},
		{"string-differs", "a", "b", false},
		{"bool-bool", true, true, true},
		{"int64-int64", int64(7), int64(7), true},
		{"int64-differs", int64(7), int64(8), false},
	}
	for _, tc := range cases {
		if got := LitEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: LitEqual(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

// Hash/equality alignment: two single-literal values must hash equal
// exactly when LitEqual says they are equal. A mismatch in either
// direction re-opens the NaN bug class (see internal/proptest's
// regress_nan_test.go).
func TestLitEqualAgreesWithHash(t *testing.T) {
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1),
		0, math.Copysign(0, -1), 1, 1.5}
	hash := func(v float64) string {
		w := newHasher(SHA256)
		w.lit(v)
		return w.sum()
	}
	for _, a := range vals {
		for _, b := range vals {
			if eq, heq := LitEqual(a, b), hash(a) == hash(b); eq != heq {
				t.Errorf("values %v, %v: LitEqual=%v but hashEqual=%v", a, b, eq, heq)
			}
		}
	}
}
