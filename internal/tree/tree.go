// Package tree implements immutable, schema-validated trees with
// cryptographic subtree hashes.
//
// Trees are the input to structural diffing. Every node carries a
// constructor tag, a URI identity, an ordered list of child subtrees (one
// per kid link of the tag's signature), and an ordered list of literal
// values (one per literal link). Construction validates the node against
// its schema, so a *Node is well-typed by construction.
//
// Each node caches two hashes that drive the truediff algorithm's
// equivalence relations (paper §4.1):
//
//   - the structure hash, which covers the tag and the kids' structure
//     hashes but ignores literals — two trees are structurally equivalent
//     iff their structure hashes agree;
//   - the literal hash, which covers the literal values and the kids'
//     literal hashes but ignores tags — two trees are literally equivalent
//     iff their literal hashes agree.
//
// Two trees are equal iff they are both structurally and literally
// equivalent.
package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/sig"
	"repro/internal/uri"
)

// HashKind selects the algorithm used for subtree hashes. The paper uses a
// cryptographic hash (SHA-256); FNV is provided for the hashing ablation
// benchmark.
type HashKind uint8

const (
	// SHA256 is the paper's choice: collision probability is negligible,
	// so hash equality can be used as tree equality.
	SHA256 HashKind = iota
	// FNV64 is a fast non-cryptographic hash; collisions are unlikely but
	// possible, so it trades a little safety for speed.
	FNV64
)

// Node is an immutable tree node. Kids and Lits are ordered exactly as in
// the tag's signature. Do not mutate a Node after construction; build a new
// tree instead (the mutable representation lives in package mtree).
type Node struct {
	Tag  sig.Tag
	URI  uri.URI
	Kids []*Node
	Lits []any

	height     int
	size       int
	structHash string
	litHash    string
}

// New validates and constructs a node. kids must match the tag's kid links
// in number and sort (up to subtyping); lits must match the literal links in
// number and base type. Hashes are computed eagerly with SHA-256 so that
// tree construction accounts for hashing cost, as in the paper's evaluation.
func New(sch *sig.Schema, alloc *uri.Allocator, tag sig.Tag, kids []*Node, lits []any) (*Node, error) {
	return NewHashed(sch, alloc, tag, kids, lits, SHA256)
}

// NewHashed is New with an explicit hash algorithm.
func NewHashed(sch *sig.Schema, alloc *uri.Allocator, tag sig.Tag, kids []*Node, lits []any, kind HashKind) (*Node, error) {
	g := sch.Lookup(tag)
	if g == nil {
		return nil, fmt.Errorf("tree: undeclared tag %s", tag)
	}
	if tag == sig.RootTag {
		return nil, fmt.Errorf("tree: cannot construct the pre-defined root tag")
	}
	if len(kids) != len(g.Kids) {
		return nil, fmt.Errorf("tree: tag %s expects %d kids, got %d", tag, len(g.Kids), len(kids))
	}
	if len(lits) != len(g.Lits) {
		return nil, fmt.Errorf("tree: tag %s expects %d literals, got %d", tag, len(g.Lits), len(lits))
	}
	for i, k := range kids {
		if k == nil {
			return nil, fmt.Errorf("tree: tag %s kid %q is nil", tag, g.Kids[i].Link)
		}
		ks, ok := sch.ResultSort(k.Tag)
		if !ok {
			return nil, fmt.Errorf("tree: kid tag %s undeclared", k.Tag)
		}
		if !sch.IsSubsort(ks, g.Kids[i].Sort) {
			return nil, fmt.Errorf("tree: tag %s kid %q: sort %s is not a subsort of %s",
				tag, g.Kids[i].Link, ks, g.Kids[i].Sort)
		}
	}
	for i, l := range lits {
		if !g.Lits[i].Type.Admits(l) {
			return nil, fmt.Errorf("tree: tag %s literal %q: value %v (%T) does not conform to %s",
				tag, g.Lits[i].Link, l, l, g.Lits[i].Type)
		}
	}
	n := &Node{
		Tag:  tag,
		URI:  alloc.Fresh(),
		Kids: append([]*Node(nil), kids...),
		Lits: append([]any(nil), lits...),
	}
	n.finish(kind)
	return n, nil
}

// NewWithURI is NewHashed but uses the given URI instead of allocating a
// fresh one, and reserves it in alloc so future allocations cannot collide.
// It is used when reconstructing immutable trees from mutable ones while
// preserving node identities.
func NewWithURI(sch *sig.Schema, alloc *uri.Allocator, u uri.URI, tag sig.Tag, kids []*Node, lits []any, kind HashKind) (*Node, error) {
	n, err := NewHashed(sch, alloc, tag, kids, lits, kind)
	if err != nil {
		return nil, err
	}
	n.URI = u
	alloc.Reserve(u)
	return n, nil
}

// finish computes the cached height, size, and hashes of a node whose Tag,
// Kids, and Lits are already set. Kids must already be finished.
func (n *Node) finish(kind HashKind) {
	h, sz := 0, 1
	for _, k := range n.Kids {
		if k.height+1 > h {
			h = k.height + 1
		}
		sz += k.size
	}
	n.height, n.size = h, sz
	n.structHash = hashStructure(n, kind)
	n.litHash = hashLiterals(n, kind)
}

// Height returns the node's height: 0 for leaves.
func (n *Node) Height() int { return n.height }

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int { return n.size }

// StructHash returns the structure-equivalence hash (ignores literals).
func (n *Node) StructHash() string { return n.structHash }

// LitHash returns the literal-equivalence hash (ignores tags).
func (n *Node) LitHash() string { return n.litHash }

// ExactHash returns a key under which two trees collide iff they are equal
// (structurally and literally equivalent).
func (n *Node) ExactHash() string { return n.structHash + n.litHash }

// StructurallyEquivalent reports whether n and m have the same shape
// modulo literal values (paper: n ≃ m).
func StructurallyEquivalent(n, m *Node) bool { return n.structHash == m.structHash }

// LiterallyEquivalent reports whether n and m carry the same literals
// modulo tags.
func LiterallyEquivalent(n, m *Node) bool { return n.litHash == m.litHash }

// hashStructure computes H(tag, kids' structure hashes).
func hashStructure(n *Node, kind HashKind) string {
	w := newHasher(kind)
	w.str(string(n.Tag))
	for _, k := range n.Kids {
		w.str(k.structHash)
	}
	return w.sum()
}

// hashLiterals computes H(lits, kids' literal hashes).
func hashLiterals(n *Node, kind HashKind) string {
	w := newHasher(kind)
	for _, l := range n.Lits {
		w.lit(l)
	}
	for _, k := range n.Kids {
		w.str(k.litHash)
	}
	return w.sum()
}

// hasher is a tiny length-prefixed writer over either hash algorithm.
type hasher struct {
	sha  bool
	s    [32]byte
	shaW interface {
		Write([]byte) (int, error)
		Sum([]byte) []byte
	}
	fnvW interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	buf [10]byte
}

func newHasher(kind HashKind) *hasher {
	h := &hasher{}
	if kind == SHA256 {
		h.sha = true
		h.shaW = sha256.New()
	} else {
		h.fnvW = fnv.New64a()
	}
	return h
}

func (h *hasher) write(b []byte) {
	if h.sha {
		h.shaW.Write(b)
	} else {
		h.fnvW.Write(b)
	}
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:8], v)
	h.write(h.buf[:8])
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.write([]byte(s))
}

// lit hashes a literal value with a type discriminator so that, e.g., the
// string "1" and the integer 1 hash differently.
func (h *hasher) lit(v any) {
	switch x := v.(type) {
	case string:
		h.buf[9] = 's'
		h.write(h.buf[9:10])
		h.str(x)
	case int64:
		h.buf[9] = 'i'
		h.write(h.buf[9:10])
		h.u64(uint64(x))
	case float64:
		h.buf[9] = 'f'
		h.write(h.buf[9:10])
		h.u64(math.Float64bits(x))
	case bool:
		h.buf[9] = 'b'
		h.write(h.buf[9:10])
		if x {
			h.u64(1)
		} else {
			h.u64(0)
		}
	default:
		// Construction validates literal types, so this is unreachable for
		// nodes built through New; hash the formatted value defensively.
		h.buf[9] = '?'
		h.write(h.buf[9:10])
		h.str(fmt.Sprint(v))
	}
}

func (h *hasher) sum() string {
	if h.sha {
		return string(h.shaW.Sum(h.s[:0]))
	}
	binary.LittleEndian.PutUint64(h.s[:8], h.fnvW.Sum64())
	return string(h.s[:8])
}

// Walk visits the subtree rooted at n in preorder, including n itself.
func Walk(n *Node, f func(*Node)) {
	f(n)
	for _, k := range n.Kids {
		Walk(k, f)
	}
}

// WalkPost visits the subtree rooted at n in postorder, including n.
func WalkPost(n *Node, f func(*Node)) {
	for _, k := range n.Kids {
		WalkPost(k, f)
	}
	f(n)
}

// Count returns the number of nodes in the tree (same as n.Size()).
func Count(n *Node) int { return n.size }

// Equal reports deep structural and literal equality, ignoring URIs. It
// compares hashes first and falls back to a full traversal only when the
// hashes agree, making it safe even under FNV hashing.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.structHash != b.structHash || a.litHash != b.litHash {
		return false
	}
	return deepEqual(a, b)
}

func deepEqual(a, b *Node) bool {
	if a.Tag != b.Tag || len(a.Kids) != len(b.Kids) || len(a.Lits) != len(b.Lits) {
		return false
	}
	for i := range a.Lits {
		if !LitEqual(a.Lits[i], b.Lits[i]) {
			return false
		}
	}
	for i := range a.Kids {
		if !deepEqual(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// LitEqual reports equality of two literal values under the semantics the
// literal hash uses: float64 values compare by bit pattern, everything
// else by Go equality. Go's == disagrees with the hash on exactly the
// float specials — NaN != NaN although identical NaNs hash equal, and
// -0 == +0 although they hash differently — so comparing literals with ==
// lets hash-equal trees fail observable equality. Concretely, diffing
// trees containing NaN emitted scripts whose unload/update edits could
// never comply with their own source. Every literal comparison in the
// module must go through this function.
func LitEqual(a, b any) bool {
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		return ok && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}

// Clone deep-copies the tree, assigning fresh URIs from alloc and
// recomputing hashes with the given algorithm. It is used by benchmarks to
// reconstruct trees before each diff so hashing cost is measured.
func Clone(n *Node, alloc *uri.Allocator, kind HashKind) *Node {
	kids := make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = Clone(k, alloc, kind)
	}
	c := &Node{
		Tag:  n.Tag,
		URI:  alloc.Fresh(),
		Kids: kids,
		Lits: append([]any(nil), n.Lits...),
	}
	c.finish(kind)
	return c
}

// String renders the tree as a compact term with URI subscripts, e.g.
// Add#1(Var#2{name="a"}, Num#3{n=1}).
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, nil)
	return b.String()
}

// StringIn renders the tree like String but labels literals with their
// link names from the schema.
func (n *Node) StringIn(sch *sig.Schema) string {
	var b strings.Builder
	n.format(&b, sch)
	return b.String()
}

func (n *Node) format(b *strings.Builder, sch *sig.Schema) {
	b.WriteString(string(n.Tag))
	b.WriteString(n.URI.String())
	if len(n.Lits) > 0 {
		b.WriteByte('{')
		var g *sig.Sig
		if sch != nil {
			g = sch.Lookup(n.Tag)
		}
		for i, l := range n.Lits {
			if i > 0 {
				b.WriteString(", ")
			}
			if g != nil && i < len(g.Lits) {
				b.WriteString(string(g.Lits[i].Link))
				b.WriteByte('=')
			}
			fmt.Fprintf(b, "%#v", l)
		}
		b.WriteByte('}')
	}
	if len(n.Kids) > 0 {
		b.WriteByte('(')
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteString(", ")
			}
			k.format(b, sch)
		}
		b.WriteByte(')')
	}
}
