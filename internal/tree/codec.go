package tree

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sig"
	"repro/internal/uri"
)

// This file provides two interchange formats for trees:
//
//   - an S-expression text format with a parser, so trees can be stored and
//     reloaded (used by tooling and tests);
//   - a Graphviz DOT export for visualizing trees and diffs.
//
// The S-expression grammar is
//
//	tree    := '(' tag item* ')'
//	item    := tree | literal
//	literal := string | int | float | bool-sym
//
// Literals appear in signature order before/between subtrees in any order;
// decoding reassembles them by the schema's signature. URIs are not part of
// the format: decoding allocates fresh ones.

// EncodeSExpr renders the tree as an S-expression.
func EncodeSExpr(n *Node) string {
	var b strings.Builder
	encodeSExpr(n, &b)
	return b.String()
}

func encodeSExpr(n *Node, b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(string(n.Tag))
	for _, l := range n.Lits {
		b.WriteByte(' ')
		switch v := l.(type) {
		case string:
			b.WriteString(strconv.Quote(v))
		case int64:
			b.WriteString(strconv.FormatInt(v, 10))
		case float64:
			// NaN and ±Inf format as words ParseFloat accepts back; only
			// finite integral values need the ".0" marker that keeps them
			// from re-parsing as int64.
			s := strconv.FormatFloat(v, 'g', -1, 64)
			if !math.IsNaN(v) && !math.IsInf(v, 0) && !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			b.WriteString(s)
		case bool:
			if v {
				b.WriteString("#t")
			} else {
				b.WriteString("#f")
			}
		}
	}
	for _, k := range n.Kids {
		b.WriteByte(' ')
		encodeSExpr(k, b)
	}
	b.WriteByte(')')
}

// DecodeSExpr parses an S-expression produced by EncodeSExpr, validating
// against the schema and allocating fresh URIs.
func DecodeSExpr(src string, sch *sig.Schema, alloc *uri.Allocator) (*Node, error) {
	p := &sexprParser{src: src}
	n, err := p.tree(sch, alloc)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input at offset %d", p.pos)
	}
	return n, nil
}

type sexprParser struct {
	src string
	pos int
}

func (p *sexprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *sexprParser) errf(format string, args ...any) error {
	return fmt.Errorf("tree: sexpr offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *sexprParser) tree(sch *sig.Schema, alloc *uri.Allocator) (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune(" \t\n\r()", rune(p.src[p.pos])) {
		p.pos++
	}
	tag := sig.Tag(p.src[start:p.pos])
	if tag == "" {
		return nil, p.errf("missing tag")
	}
	var kids []*Node
	var lits []any
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated tree for %s", tag)
		}
		c := p.src[p.pos]
		if c == ')' {
			p.pos++
			return New(sch, alloc, tag, kids, lits)
		}
		if c == '(' {
			k, err := p.tree(sch, alloc)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
			continue
		}
		l, err := p.literal()
		if err != nil {
			return nil, err
		}
		lits = append(lits, l)
	}
}

func (p *sexprParser) literal() (any, error) {
	c := p.src[p.pos]
	switch {
	case c == '"':
		end := p.pos + 1
		for end < len(p.src) {
			if p.src[end] == '\\' {
				end += 2
				continue
			}
			if p.src[end] == '"' {
				break
			}
			end++
		}
		if end >= len(p.src) {
			return nil, p.errf("unterminated string")
		}
		s, err := strconv.Unquote(p.src[p.pos : end+1])
		if err != nil {
			return nil, p.errf("bad string literal: %v", err)
		}
		p.pos = end + 1
		return s, nil
	case c == '#':
		if strings.HasPrefix(p.src[p.pos:], "#t") {
			p.pos += 2
			return true, nil
		}
		if strings.HasPrefix(p.src[p.pos:], "#f") {
			p.pos += 2
			return false, nil
		}
		return nil, p.errf("bad boolean")
	default:
		start := p.pos
		for p.pos < len(p.src) && !strings.ContainsRune(" \t\n\r()", rune(p.src[p.pos])) {
			p.pos++
		}
		word := p.src[start:p.pos]
		if i, err := strconv.ParseInt(word, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(word, 64); err == nil {
			return f, nil
		}
		return nil, p.errf("bad literal %q", word)
	}
}

// EncodeDOT renders the tree as a Graphviz digraph. Nodes display their
// tag, URI, and literals; edges are labeled with their links. Passing a
// non-nil highlight set draws those URIs with a double border — handy for
// visualizing the nodes an edit script touches.
func EncodeDOT(n *Node, sch *sig.Schema, highlight map[uri.URI]bool) string {
	var b strings.Builder
	b.WriteString("digraph tree {\n  node [shape=box, fontname=\"monospace\"];\n")
	var walk func(x *Node)
	walk = func(x *Node) {
		label := string(x.Tag) + "\\n" + x.URI.String()
		for i, l := range x.Lits {
			if i == 0 {
				label += "\\n"
			} else {
				label += " "
			}
			label += strings.ReplaceAll(fmt.Sprintf("%v", l), `"`, `\"`)
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if highlight[x.URI] {
			attrs += ", peripheries=2, color=red"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", uint64(x.URI), attrs)
		g := sch.Lookup(x.Tag)
		for i, k := range x.Kids {
			link := ""
			if g != nil && i < len(g.Kids) {
				link = string(g.Kids[i].Link)
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s\"];\n", uint64(x.URI), uint64(k.URI), link)
			walk(k)
		}
	}
	walk(n)
	b.WriteString("}\n")
	return b.String()
}
