package gumtree

import "repro/internal/tree"

// This file bridges the Gumtree matcher back to typed trees, enabling the
// §7 experiment of generating type-safe truechange scripts from Gumtree's
// similarity-based matching (see truediff.DiffWithMatching).

// FromTreeWithMap converts a typed tree into a finished rose tree and
// returns the correspondence from rose nodes back to the typed nodes.
func FromTreeWithMap(t *tree.Node) (*Node, map[*Node]*tree.Node) {
	back := make(map[*Node]*tree.Node, t.Size())
	var conv func(x *tree.Node) *Node
	conv = func(x *tree.Node) *Node {
		n := &Node{Type: string(x.Tag), Label: labelOf(x)}
		back[n] = x
		n.Children = make([]*Node, len(x.Kids))
		for i, k := range x.Kids {
			n.Children[i] = conv(k)
		}
		return n
	}
	root := conv(t)
	Finish(root)
	return root, back
}

// TypedPair is a matched pair of typed nodes.
type TypedPair struct {
	Src *tree.Node
	Dst *tree.Node
}

// MatchTyped runs the Gumtree matching pipeline on two typed trees and
// returns the matched pairs as typed nodes. Pairs whose constructors
// differ are dropped: they cannot be realized by a type-preserving morph.
func MatchTyped(src, dst *tree.Node, opts Options) []TypedPair {
	rs, backS := FromTreeWithMap(src)
	rd, backD := FromTreeWithMap(dst)
	m := Match(rs, rd, opts)
	out := make([]TypedPair, 0, m.Len())
	for s, d := range m.SrcToDst {
		ts, td := backS[s], backD[d]
		if ts == nil || td == nil || ts.Tag != td.Tag {
			continue
		}
		out = append(out, TypedPair{Src: ts, Dst: td})
	}
	return out
}
