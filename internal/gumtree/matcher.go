package gumtree

import (
	"sort"
)

// Options tune the matcher, mirroring Gumtree's parameters.
type Options struct {
	// MinHeight is the minimum subtree height considered by the greedy
	// top-down phase (Gumtree's default: 2).
	MinHeight int
	// MinDice is the similarity threshold of the bottom-up phase
	// (Gumtree's default: 0.5).
	MinDice float64
	// MaxSize bounds the subtree size for which the bottom-up positional
	// recovery phase searches additional mappings. Gumtree defaults to 100
	// because its recovery runs a cubic RTED; our greedy recovery is
	// near-linear, so the default is far more generous.
	MaxSize int
}

// DefaultOptions returns Gumtree's standard parameters, with MaxSize raised
// to suit the cheap greedy recovery (see the MaxSize field).
func DefaultOptions() Options {
	return Options{MinHeight: 2, MinDice: 0.5, MaxSize: 2000}
}

// Mapping is a bipartite matching between source and target nodes.
type Mapping struct {
	SrcToDst map[*Node]*Node
	DstToSrc map[*Node]*Node
}

// NewMapping returns an empty mapping.
func NewMapping() *Mapping {
	return &Mapping{
		SrcToDst: make(map[*Node]*Node),
		DstToSrc: make(map[*Node]*Node),
	}
}

// Add records the pair (s, d) if both sides are still unmatched.
func (m *Mapping) Add(s, d *Node) {
	if _, ok := m.SrcToDst[s]; ok {
		return
	}
	if _, ok := m.DstToSrc[d]; ok {
		return
	}
	m.SrcToDst[s] = d
	m.DstToSrc[d] = s
}

// AddRecursive records (s, d) and all corresponding descendants; the
// subtrees must be isomorphic.
func (m *Mapping) AddRecursive(s, d *Node) {
	m.Add(s, d)
	for i := range s.Children {
		m.AddRecursive(s.Children[i], d.Children[i])
	}
}

// HasSrc reports whether the source node is matched.
func (m *Mapping) HasSrc(s *Node) bool { _, ok := m.SrcToDst[s]; return ok }

// HasDst reports whether the target node is matched.
func (m *Mapping) HasDst(d *Node) bool { _, ok := m.DstToSrc[d]; return ok }

// Len returns the number of matched pairs.
func (m *Mapping) Len() int { return len(m.SrcToDst) }

// Dice computes the similarity of two containers under the mapping:
// 2·|matched descendant pairs| / (|desc(s)| + |desc(d)|).
func (m *Mapping) Dice(s, d *Node) float64 {
	total := float64(s.size-1) + float64(d.size-1)
	if total == 0 {
		return 0
	}
	common := 0
	Walk(s, func(x *Node) {
		if x == s {
			return
		}
		if p, ok := m.SrcToDst[x]; ok && inSubtree(p, d) {
			common++
		}
	})
	return 2 * float64(common) / total
}

func inSubtree(x, root *Node) bool {
	for cur := x; cur != nil; cur = cur.parent {
		if cur == root {
			return true
		}
	}
	return false
}

// Match runs the Gumtree matching pipeline on two finished trees.
func Match(src, dst *Node, opts Options) *Mapping {
	m := NewMapping()
	topDown(src, dst, m, opts)
	bottomUp(src, dst, m, opts)
	return m
}

// heightList is the height-indexed priority list of the top-down phase.
type heightList struct {
	nodes []*Node
}

func (h *heightList) push(n *Node) {
	h.nodes = append(h.nodes, n)
}

func (h *heightList) peekMax() int {
	max := 0
	for _, n := range h.nodes {
		if n.height > max {
			max = n.height
		}
	}
	return max
}

// popHeight removes and returns all nodes of exactly height hh, preserving
// insertion order.
func (h *heightList) popHeight(hh int) []*Node {
	var out, rest []*Node
	for _, n := range h.nodes {
		if n.height == hh {
			out = append(out, n)
		} else {
			rest = append(rest, n)
		}
	}
	h.nodes = rest
	return out
}

func (h *heightList) open(n *Node) {
	for _, c := range n.Children {
		h.push(c)
	}
}

// topDown greedily matches isomorphic subtrees from tallest to smallest
// (Falleri et al., Algorithm 1). Hash-unique isomorphic pairs are mapped
// recursively; ambiguous groups are resolved per height level by parent
// similarity; everything unmatched is opened.
func topDown(src, dst *Node, m *Mapping, opts Options) {
	l1, l2 := &heightList{}, &heightList{}
	l1.push(src)
	l2.push(dst)
	for {
		h1, h2 := l1.peekMax(), l2.peekMax()
		if min(h1, h2) < opts.MinHeight || h1 == 0 || h2 == 0 {
			break
		}
		if h1 != h2 {
			if h1 > h2 {
				for _, n := range l1.popHeight(h1) {
					l1.open(n)
				}
			} else {
				for _, n := range l2.popHeight(h2) {
					l2.open(n)
				}
			}
			continue
		}
		srcs := l1.popHeight(h1)
		dsts := l2.popHeight(h2)

		byHashSrc := make(map[string][]*Node)
		for _, n := range srcs {
			byHashSrc[n.hash] = append(byHashSrc[n.hash], n)
		}
		byHashDst := make(map[string][]*Node)
		for _, n := range dsts {
			byHashDst[n.hash] = append(byHashDst[n.hash], n)
		}

		matchedSrc := make(map[*Node]bool)
		matchedDst := make(map[*Node]bool)

		// Unique isomorphic pairs map immediately and recursively.
		type ambPair struct{ s, d *Node }
		var ambiguous []ambPair
		for hash, ss := range byHashSrc {
			dd, ok := byHashDst[hash]
			if !ok {
				continue
			}
			if len(ss) == 1 && len(dd) == 1 {
				m.AddRecursive(ss[0], dd[0])
				matchedSrc[ss[0]] = true
				matchedDst[dd[0]] = true
				continue
			}
			for _, s := range ss {
				for _, d := range dd {
					ambiguous = append(ambiguous, ambPair{s, d})
				}
			}
		}

		// Ambiguous pairs: prefer pairs whose parents look alike, then
		// close preorder positions; greedily assign.
		sort.SliceStable(ambiguous, func(i, j int) bool {
			pi, pj := ambScore(ambiguous[i].s, ambiguous[i].d), ambScore(ambiguous[j].s, ambiguous[j].d)
			if pi != pj {
				return pi > pj
			}
			di := abs(ambiguous[i].s.id - ambiguous[i].d.id)
			dj := abs(ambiguous[j].s.id - ambiguous[j].d.id)
			return di < dj
		})
		for _, p := range ambiguous {
			if matchedSrc[p.s] || matchedDst[p.d] {
				continue
			}
			m.AddRecursive(p.s, p.d)
			matchedSrc[p.s] = true
			matchedDst[p.d] = true
		}

		for _, n := range srcs {
			if !matchedSrc[n] {
				l1.open(n)
			}
		}
		for _, n := range dsts {
			if !matchedDst[n] {
				l2.open(n)
			}
		}
	}
}

// ambScore ranks ambiguous isomorphic pairs: matching parents beat parents
// of equal hash, which beat parents of equal type.
func ambScore(s, d *Node) int {
	ps, pd := s.parent, d.parent
	switch {
	case ps == nil && pd == nil:
		return 3
	case ps == nil || pd == nil:
		return 0
	case ps.hash == pd.hash:
		return 2
	case ps.Type == pd.Type:
		return 1
	default:
		return 0
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// bottomUp matches containers: an unmatched source node with matched
// descendants is paired with the most similar unmatched target node of the
// same type if their dice coefficient clears the threshold; a recovery pass
// then matches remaining descendants of the new pair (Falleri et al.,
// Algorithm 2 — with a greedy recovery in place of RTED).
func bottomUp(src, dst *Node, m *Mapping, opts Options) {
	WalkPost(src, func(t1 *Node) {
		if m.HasSrc(t1) {
			return
		}
		isRoot := t1.parent == nil
		if !isRoot && !hasMatchedDescendant(t1, m) {
			return
		}
		var best *Node
		bestDice := 0.0
		for _, t2 := range containerCandidates(t1, dst, m) {
			d := m.Dice(t1, t2)
			if d > bestDice {
				best, bestDice = t2, d
			}
		}
		if best == nil && isRoot && !m.HasDst(dst) && t1.Type == dst.Type {
			best, bestDice = dst, 1 // roots of equal type always pair up
		}
		if best != nil && (bestDice >= opts.MinDice || isRoot) {
			m.Add(t1, best)
			recoverHash(t1, best, m)
			if t1.size < opts.MaxSize && best.size < opts.MaxSize {
				recoverChildren(t1, best, m)
			}
		}
	})
}

func hasMatchedDescendant(t *Node, m *Mapping) bool {
	found := false
	Walk(t, func(x *Node) {
		if x != t && m.HasSrc(x) {
			found = true
		}
	})
	return found
}

// containerCandidates finds unmatched target nodes of t1's type that
// contain partners of t1's descendants.
func containerCandidates(t1 *Node, dst *Node, m *Mapping) []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	Walk(t1, func(x *Node) {
		if x == t1 {
			return
		}
		p, ok := m.SrcToDst[x]
		if !ok {
			return
		}
		for cur := p.parent; cur != nil; cur = cur.parent {
			if seen[cur] {
				break
			}
			seen[cur] = true
			if !m.HasDst(cur) && cur.Type == t1.Type {
				out = append(out, cur)
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// recoverHash is the cheap half of the recovery that stands in for
// Gumtree's RTED phase: a linear cross-level pass pairing isomorphic
// unmatched descendants of a freshly matched container pair by hash. It
// catches unchanged small subtrees that the top-down phase's MinHeight
// cutoff skipped, and runs for containers of any size.
func recoverHash(t1, t2 *Node, m *Mapping) {
	srcByHash := make(map[string][]*Node)
	Walk(t1, func(x *Node) {
		if x != t1 && !m.HasSrc(x) {
			srcByHash[x.hash] = append(srcByHash[x.hash], x)
		}
	})
	dstByHash := make(map[string][]*Node)
	Walk(t2, func(x *Node) {
		if x != t2 && !m.HasDst(x) {
			dstByHash[x.hash] = append(dstByHash[x.hash], x)
		}
	})
	for h, ss := range srcByHash {
		dd := dstByHash[h]
		for i := 0; i < len(ss) && i < len(dd); i++ {
			m.AddRecursive(ss[i], dd[i])
		}
	}
}

// recoverChildren greedily pairs unmatched children of a matched pair:
// first isomorphic subtrees, then nodes of equal type and label, then
// children of equal type, recursing into each new pair.
func recoverChildren(t1, t2 *Node, m *Mapping) {
	var srcOpen, dstOpen []*Node
	for _, c := range t1.Children {
		if !m.HasSrc(c) {
			srcOpen = append(srcOpen, c)
		}
	}
	for _, c := range t2.Children {
		if !m.HasDst(c) {
			dstOpen = append(dstOpen, c)
		}
	}
	usedDst := make(map[*Node]bool)
	pairUp := func(match func(a, b *Node) bool, rec bool) {
		for _, a := range srcOpen {
			if m.HasSrc(a) {
				continue
			}
			for _, b := range dstOpen {
				if usedDst[b] || m.HasDst(b) || !match(a, b) {
					continue
				}
				usedDst[b] = true
				if rec {
					m.AddRecursive(a, b)
				} else {
					m.Add(a, b)
					recoverChildren(a, b, m)
				}
				break
			}
		}
	}
	pairUp(func(a, b *Node) bool { return a.hash == b.hash }, true)
	pairUp(func(a, b *Node) bool { return a.Type == b.Type && a.Label == b.Label }, false)
	pairUp(func(a, b *Node) bool { return a.Type == b.Type }, false)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
