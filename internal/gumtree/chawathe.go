package gumtree

import (
	"fmt"
	"strings"
)

// ActionKind classifies Chawathe-style edit actions.
type ActionKind uint8

// The four edit actions of Chawathe et al. (1996) as used by Gumtree.
const (
	Insert ActionKind = iota
	Delete
	Move
	UpdateLabel
)

func (k ActionKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Move:
		return "move"
	case UpdateLabel:
		return "update"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// Action is one edit operation. For Insert, Node identifies the inserted
// target node; for Delete, Move, and UpdateLabel it identifies the affected
// source node (or, for moves of freshly inserted nodes, the target node).
// Parent/Pos locate insertions and moves in the evolving tree.
type Action struct {
	Kind   ActionKind
	Node   *Node
	Parent *Node
	Pos    int
	Label  string // new label for UpdateLabel
}

func (a Action) String() string {
	pt := "?"
	if a.Parent != nil {
		pt = a.Parent.Type
	}
	switch a.Kind {
	case Insert:
		return fmt.Sprintf("insert(%s{%s}, parent=%s, pos=%d)", a.Node.Type, a.Node.Label, pt, a.Pos)
	case Delete:
		return fmt.Sprintf("delete(%s{%s})", a.Node.Type, a.Node.Label)
	case Move:
		return fmt.Sprintf("move(%s{%s}, parent=%s, pos=%d)", a.Node.Type, a.Node.Label, pt, a.Pos)
	case UpdateLabel:
		return fmt.Sprintf("update(%s{%s} -> %s)", a.Node.Type, a.Node.Label, a.Label)
	default:
		return "unknown"
	}
}

// Script is a Chawathe edit script.
type Script struct {
	Actions []Action
}

// Len returns the number of actions, Gumtree's patch size metric.
func (s *Script) Len() int { return len(s.Actions) }

// String renders the script one action per line.
func (s *Script) String() string {
	var b strings.Builder
	b.WriteString("[\n")
	for _, a := range s.Actions {
		b.WriteString("  ")
		b.WriteString(a.String())
		b.WriteString("\n")
	}
	b.WriteString("]")
	return b.String()
}

// wnode is a node of the mutable working tree the script generator
// simulates its actions against.
type wnode struct {
	typ, label string
	children   []*wnode
	parent     *wnode
	src        *Node // originating source node, nil for inserted nodes
	dst        *Node // the target node this working node realizes, once known
}

func (w *wnode) index() int {
	for i, c := range w.parent.children {
		if c == w {
			return i
		}
	}
	return -1
}

func (w *wnode) insertChild(c *wnode, pos int) {
	if pos > len(w.children) {
		pos = len(w.children)
	}
	w.children = append(w.children, nil)
	copy(w.children[pos+1:], w.children[pos:])
	w.children[pos] = c
	c.parent = w
}

func (w *wnode) removeChild(c *wnode) {
	i := c.index()
	w.children = append(w.children[:i], w.children[i+1:]...)
	c.parent = nil
}

// generator carries the state of the Chawathe edit-script derivation.
type generator struct {
	m         *Mapping
	script    *Script
	partner   map[*Node]*wnode // src node -> working node
	placed    map[*Node]*wnode // processed dst node -> working node
	inOrderW  map[*wnode]bool
	inOrderD  map[*Node]bool
	superRoot *wnode
}

// wOf returns the working node realizing the dst node x, if any: either x
// was already processed, or x is matched and its partner's working node
// stands in for it.
func (g *generator) wOf(x *Node) *wnode {
	if w, ok := g.placed[x]; ok {
		return w
	}
	if s, ok := g.m.DstToSrc[x]; ok {
		return g.partner[s]
	}
	return nil
}

// dstOf returns the dst node a working node realizes, if known.
func (g *generator) dstOf(w *wnode) *Node {
	if w.dst != nil {
		return w.dst
	}
	if w.src != nil {
		return g.m.SrcToDst[w.src]
	}
	return nil
}

// actionNode picks the reporting identity of a working node: its source
// node, or for inserted nodes the target node it realizes.
func (g *generator) actionNode(w *wnode) *Node {
	if w.src != nil {
		return w.src
	}
	return w.dst
}

// EditScript derives a Chawathe-style edit script that transforms src into
// dst under the given mapping, following the classic algorithm: a preorder
// pass over dst performing insert/update/move with findPos-computed
// positions, child alignment via a longest common subsequence of matched
// children, and a final postorder delete pass. It simulates the script
// against a working copy of src and returns the patched rose tree, which
// must equal dst (the tests assert this).
func EditScript(src, dst *Node, m *Mapping) (*Script, *Node) {
	g := &generator{
		m:        m,
		script:   &Script{},
		partner:  make(map[*Node]*wnode),
		placed:   make(map[*Node]*wnode),
		inOrderW: make(map[*wnode]bool),
		inOrderD: make(map[*Node]bool),
	}

	var copyW func(n *Node, parent *wnode) *wnode
	copyW = func(n *Node, parent *wnode) *wnode {
		w := &wnode{typ: n.Type, label: n.Label, parent: parent, src: n}
		for _, c := range n.Children {
			w.children = append(w.children, copyW(c, w))
		}
		g.partner[n] = w
		return w
	}
	// A virtual super-root avoids special-casing root replacement.
	g.superRoot = &wnode{typ: "\x00virtual-root"}
	g.superRoot.children = []*wnode{copyW(src, g.superRoot)}

	g.process(dst)
	g.deletePass(src)

	var toRose func(w *wnode) *Node
	toRose = func(w *wnode) *Node {
		n := &Node{Type: w.typ, Label: w.label}
		for _, c := range w.children {
			n.Children = append(n.Children, toRose(c))
		}
		return n
	}
	if len(g.superRoot.children) == 0 {
		return g.script, nil
	}
	return g.script, Finish(toRose(g.superRoot.children[0]))
}

func (g *generator) emit(a Action) {
	g.script.Actions = append(g.script.Actions, a)
}

// process handles one dst node in preorder: insert if unmatched, otherwise
// update the label and move across parents when needed; then align the
// children and recurse.
func (g *generator) process(x *Node) {
	var w *wnode
	var z *wnode // working partner of x's parent
	if x.Parent() == nil {
		z = g.superRoot
	} else {
		z = g.placed[x.Parent()]
	}

	if s, matched := g.m.DstToSrc[x]; matched {
		w = g.partner[s]
		if w.label != x.Label {
			g.emit(Action{Kind: UpdateLabel, Node: s, Label: x.Label})
			w.label = x.Label
		}
		if w.parent != z {
			k := g.findPos(x)
			g.emit(Action{Kind: Move, Node: g.actionNode(w), Parent: g.actionNode(z), Pos: k})
			w.parent.removeChild(w)
			z.insertChild(w, k)
		}
	} else {
		w = &wnode{typ: x.Type, label: x.Label}
		k := g.findPos(x)
		g.emit(Action{Kind: Insert, Node: x, Parent: g.actionNode(z), Pos: k})
		z.insertChild(w, k)
	}
	w.dst = x
	g.placed[x] = w
	g.inOrderW[w] = true
	g.inOrderD[x] = true

	g.alignChildren(w, x)
	for _, c := range x.Children {
		g.process(c)
	}
}

// findPos computes the insertion index for the dst node x under its
// parent's working partner, based on the rightmost left sibling of x that
// is already in order (Chawathe et al.'s FindPos).
func (g *generator) findPos(x *Node) int {
	if x.Parent() == nil {
		return 0
	}
	siblings := x.Parent().Children
	var v *Node
	for _, s := range siblings {
		if s == x {
			break
		}
		if g.inOrderD[s] {
			v = s
		}
	}
	if v == nil {
		return 0
	}
	u := g.wOf(v)
	if u == nil || u.parent == nil {
		return 0
	}
	return u.index() + 1
}

// alignChildren reorders the matched children of the pair (w, x) that are
// misaligned, using a longest common subsequence to keep moves minimal.
func (g *generator) alignChildren(w *wnode, x *Node) {
	for _, c := range w.children {
		g.inOrderW[c] = false
	}
	for _, c := range x.Children {
		g.inOrderD[c] = false
	}
	// S1: children of w realizing children of x; S2: dual.
	var s1 []*wnode
	for _, c := range w.children {
		if d := g.dstOf(c); d != nil && d.Parent() == x {
			s1 = append(s1, c)
		}
	}
	var s2 []*Node
	for _, c := range x.Children {
		if u := g.wOf(c); u != nil && u.parent == w {
			s2 = append(s2, c)
		}
	}
	inLCS := lcsPairs(s1, s2, func(a *wnode, b *Node) bool { return g.dstOf(a) == b })
	for i, a := range s1 {
		if inLCS.a[i] {
			g.inOrderW[a] = true
		}
	}
	for j, b := range s2 {
		if inLCS.b[j] {
			g.inOrderD[b] = true
		}
	}
	for j, b := range s2 {
		if inLCS.b[j] {
			continue
		}
		a := g.wOf(b)
		k := g.findPos(b)
		g.emit(Action{Kind: Move, Node: g.actionNode(a), Parent: g.actionNode(w), Pos: k})
		a.parent.removeChild(a)
		w.insertChild(a, k)
		g.inOrderW[a] = true
		g.inOrderD[b] = true
	}
}

// lcsPairs marks the members of a longest common subsequence of s1 and s2
// under eq.
func lcsPairs(s1 []*wnode, s2 []*Node, eq func(*wnode, *Node) bool) (marks struct{ a, b []bool }) {
	n, m := len(s1), len(s2)
	marks.a = make([]bool, n)
	marks.b = make([]bool, m)
	if n == 0 || m == 0 {
		return marks
	}
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if eq(s1[i], s2[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case eq(s1[i], s2[j]):
			marks.a[i] = true
			marks.b[j] = true
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return marks
}

// deletePass removes unmatched source nodes, children first.
func (g *generator) deletePass(src *Node) {
	WalkPost(src, func(s *Node) {
		if g.m.HasSrc(s) {
			return
		}
		w := g.partner[s]
		g.emit(Action{Kind: Delete, Node: s})
		if w.parent != nil {
			w.parent.removeChild(w)
		}
	})
}

// Diff is the full Gumtree pipeline: match, then derive the edit script.
func Diff(src, dst *Node, opts Options) (*Script, *Mapping) {
	m := Match(src, dst, opts)
	script, _ := EditScript(src, dst, m)
	return script, m
}
