package gumtree

import (
	"testing"

	"repro/internal/exp"
)

// ft finishes a hand-built tree.
func ft(n *Node) *Node { return Finish(n) }

func TestFinishComputesMetrics(t *testing.T) {
	n := ft(New("Add", "",
		New("Sub", "", New("Var", "a"), New("Var", "b")),
		New("Num", "7")))
	if n.Size() != 5 {
		t.Errorf("size = %d", n.Size())
	}
	if n.Height() != 3 { // leaves have height 1 in Gumtree's convention
		t.Errorf("height = %d", n.Height())
	}
	if n.Children[0].Parent() != n {
		t.Error("parent links missing")
	}
	ids := map[int]bool{}
	Walk(n, func(x *Node) { ids[x.ID()] = true })
	if len(ids) != 5 || !ids[0] || !ids[4] {
		t.Errorf("preorder ids wrong: %v", ids)
	}
}

func TestIsomorphismHash(t *testing.T) {
	a := ft(New("Add", "", New("Num", "1"), New("Num", "2")))
	b := ft(New("Add", "", New("Num", "1"), New("Num", "2")))
	c := ft(New("Add", "", New("Num", "2"), New("Num", "1")))
	d := ft(New("Sub", "", New("Num", "1"), New("Num", "2")))
	if !Isomorphic(a, b) {
		t.Error("identical trees should be isomorphic")
	}
	if Isomorphic(a, c) {
		t.Error("different labels in different positions should not be isomorphic")
	}
	if Isomorphic(a, d) {
		t.Error("different types should not be isomorphic")
	}
}

func TestTopDownMatchesMovedSubtree(t *testing.T) {
	// The paper's intro example: Sub(a,b) and d swap places.
	src := ft(New("Add", "",
		New("Sub", "", New("Var", "a"), New("Var", "b")),
		New("Mul", "", New("Var", "c"), New("Var", "d"))))
	dst := ft(New("Add", "",
		New("Var", "d"),
		New("Mul", "", New("Var", "c"),
			New("Sub", "", New("Var", "a"), New("Var", "b")))))
	m := Match(src, dst, DefaultOptions())
	// Sub(a,b) must be matched isomorphically.
	sub := src.Children[0]
	p, ok := m.SrcToDst[sub]
	if !ok || p.Type != "Sub" {
		t.Fatalf("Sub not matched, mapping size %d", m.Len())
	}
	if !Isomorphic(sub, p) {
		t.Error("Sub matched non-isomorphically")
	}

	script, _ := Diff(src, dst, DefaultOptions())
	// The optimal script is two moves (paper §1).
	moves, others := 0, 0
	for _, a := range script.Actions {
		if a.Kind == Move {
			moves++
		} else {
			others++
		}
	}
	if moves != 2 || others != 0 {
		t.Errorf("script = %s, want exactly 2 moves", script)
	}
}

func TestEditScriptCorrectness(t *testing.T) {
	cases := []struct{ src, dst *Node }{
		{
			ft(New("A", "", New("B", "x"), New("C", "y"))),
			ft(New("A", "", New("C", "y"), New("B", "x"))),
		},
		{
			ft(New("A", "")),
			ft(New("A", "", New("B", "1"), New("B", "2"))),
		},
		{
			ft(New("A", "", New("B", "1"), New("B", "2"))),
			ft(New("A", "")),
		},
		{
			ft(New("A", "", New("B", "old"))),
			ft(New("A", "", New("B", "new"))),
		},
		{
			ft(New("A", "")),
			ft(New("Z", "", New("A", ""))), // root replacement
		},
		{
			ft(New("A", "", New("B", "", New("C", "c"), New("D", "d")))),
			ft(New("A", "", New("C", "c"), New("D", "d"))), // unwrap
		},
	}
	for i, c := range cases {
		m := Match(c.src, c.dst, DefaultOptions())
		script, patched := EditScript(c.src, c.dst, m)
		if patched == nil || !Equal(patched, c.dst) {
			t.Errorf("case %d: patched ≠ dst\nsrc = %s\ndst = %s\ngot = %v\nscript = %s",
				i, c.src, c.dst, patched, script)
		}
	}
}

// TestEditScriptCorrectnessRandom converts random typed expression trees to
// rose trees and checks apply-correctness across many mutations.
func TestEditScriptCorrectnessRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := exp.NewGen(seed)
		src := g.Tree(60)
		for i := 0; i < 8; i++ {
			dst := g.MutateN(src, i+1)
			rs, rd := FromTree(src), FromTree(dst)
			m := Match(rs, rd, DefaultOptions())
			script, patched := EditScript(rs, rd, m)
			if patched == nil || !Equal(patched, rd) {
				t.Fatalf("seed %d mut %d: patched ≠ dst\nscript = %s", seed, i, script)
			}
		}
	}
}

func TestIdenticalTreesEmptyScript(t *testing.T) {
	g := exp.NewGen(5)
	src := g.Tree(50)
	rs, rd := FromTree(src), FromTree(src)
	script, patched := EditScript(rs, rd, Match(rs, rd, DefaultOptions()))
	if script.Len() != 0 {
		t.Errorf("identical trees produced %d actions:\n%s", script.Len(), script)
	}
	if !Equal(patched, rd) {
		t.Error("patched ≠ dst")
	}
}

func TestSmallEditSmallScript(t *testing.T) {
	g := exp.NewGen(9)
	src := g.Tree(400)
	dst := g.Mutate(src)
	rs, rd := FromTree(src), FromTree(dst)
	script, patched := EditScript(rs, rd, Match(rs, rd, DefaultOptions()))
	if !Equal(patched, rd) {
		t.Fatal("patched ≠ dst")
	}
	if script.Len() > 30 {
		t.Errorf("single mutation in 400-node tree produced %d actions", script.Len())
	}
}

func TestFromTreePreservesStructure(t *testing.T) {
	b := exp.NewBuilder()
	typed := b.MustN(exp.Call, b.MustN(exp.Num, 7), "f")
	rose := FromTree(typed)
	if rose.Type != "Call" || rose.Label != "f" {
		t.Errorf("rose root = %s{%s}", rose.Type, rose.Label)
	}
	if len(rose.Children) != 1 || rose.Children[0].Label != "7" {
		t.Errorf("rose children wrong: %s", rose)
	}
	if rose.Size() != typed.Size() {
		t.Errorf("size mismatch: %d vs %d", rose.Size(), typed.Size())
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	n := ft(New("A", "x", New("B", "y")))
	c := Finish(Clone(n))
	if !Equal(n, c) {
		t.Error("clone differs")
	}
	c.Children[0].Label = "z"
	if n.Children[0].Label != "y" {
		t.Error("clone shares structure")
	}
}

func TestMappingLinearity(t *testing.T) {
	m := NewMapping()
	a, b, c := ft(New("A", "")), ft(New("A", "")), ft(New("A", ""))
	m.Add(a, b)
	m.Add(a, c) // a already matched: ignored
	if m.SrcToDst[a] != b || m.HasDst(c) {
		t.Error("mapping must be one-to-one")
	}
	m.Add(c, b) // b already matched: ignored
	if m.HasSrc(c) {
		t.Error("mapping must be one-to-one (dst side)")
	}
}

func TestDice(t *testing.T) {
	src := ft(New("A", "", New("B", "1"), New("B", "2"), New("B", "3"), New("B", "4")))
	dst := ft(New("A", "", New("B", "1"), New("B", "2"), New("C", "5"), New("C", "6")))
	m := NewMapping()
	m.Add(src.Children[0], dst.Children[0])
	m.Add(src.Children[1], dst.Children[1])
	got := m.Dice(src, dst)
	if got != 0.5 { // 2*2 / (4+4)
		t.Errorf("dice = %v, want 0.5", got)
	}
}

func TestBottomUpMatchesContainers(t *testing.T) {
	// Containers with mostly common children but different enough shapes
	// that top-down cannot match them wholesale.
	src := ft(New("Block", "",
		New("Stmt", "a"), New("Stmt", "b"), New("Stmt", "c"),
		New("If", "", New("Cond", "x"), New("Stmt", "t1"))))
	dst := ft(New("Block", "",
		New("Stmt", "a"), New("Stmt", "b"), New("Stmt", "c"),
		New("If", "", New("Cond", "x"), New("Stmt", "t2"), New("Stmt", "extra"))))
	m := Match(src, dst, DefaultOptions())
	ifSrc := src.Children[3]
	ifDst, ok := m.SrcToDst[ifSrc]
	if !ok || ifDst.Type != "If" {
		t.Fatalf("bottom-up failed to match the If container")
	}
	script, patched := EditScript(src, dst, m)
	if !Equal(patched, dst) {
		t.Fatalf("patched ≠ dst:\n%s", script)
	}
}
