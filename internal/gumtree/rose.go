// Package gumtree implements the Gumtree structural diffing algorithm of
// Falleri et al. (ASE 2014), the untyped baseline of the paper's
// evaluation: a greedy top-down phase matching isomorphic subtrees, a
// bottom-up phase matching containers by dice similarity, and a
// Chawathe-style edit script (insert, delete, move, update) computed from
// the mapping. Gumtree works on untyped rose trees, where a node can hold
// any number of children — which is exactly why its edit scripts cannot be
// executed against typed tree representations (paper §1).
package gumtree

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/tree"
)

// Node is an untyped rose tree node: a type label, a value label (the
// concatenated literals), and any number of children.
type Node struct {
	Type     string
	Label    string
	Children []*Node

	id     int    // preorder id, unique within one tree
	height int    // leaves have height 1 (Gumtree's convention)
	size   int    // number of nodes in the subtree
	hash   string // isomorphism hash over type, label, and children
	parent *Node
}

// ID returns the node's preorder id within its tree.
func (n *Node) ID() int { return n.id }

// Height returns the node's height; leaves have height 1.
func (n *Node) Height() int { return n.height }

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int { return n.size }

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Hash returns the isomorphism hash: two subtrees are isomorphic (same
// types, labels, and shape) iff their hashes agree.
func (n *Node) Hash() string { return n.hash }

// New builds a rose node; use Finish on the root before diffing.
func New(typ, label string, children ...*Node) *Node {
	return &Node{Type: typ, Label: label, Children: children}
}

// Finish computes ids, heights, sizes, hashes, and parent links for the
// tree rooted at n. It must be called once on a root before the tree is
// used in matching.
func Finish(n *Node) *Node {
	id := 0
	var walk func(x *Node)
	walk = func(x *Node) {
		x.id = id
		id++
		h := sha256.New()
		writeStr(h, x.Type)
		writeStr(h, x.Label)
		x.height, x.size = 1, 1
		for _, c := range x.Children {
			c.parent = x
			walk(c)
			if c.height+1 > x.height {
				x.height = c.height + 1
			}
			x.size += c.size
			writeStr(h, c.hash)
		}
		var buf [32]byte
		x.hash = string(h.Sum(buf[:0]))
	}
	walk(n)
	return n
}

func writeStr(w interface{ Write([]byte) (int, error) }, s string) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
	w.Write(b[:])
	w.Write([]byte(s))
}

// FromTree converts a typed tree into a rose tree with identical node
// structure, so Gumtree and truediff can be compared on exactly the same
// input trees (the paper's Diffable wrapper for Gumtree nodes, §5).
func FromTree(t *tree.Node) *Node {
	return Finish(fromTree(t))
}

func fromTree(t *tree.Node) *Node {
	n := &Node{Type: string(t.Tag), Label: labelOf(t)}
	n.Children = make([]*Node, len(t.Kids))
	for i, k := range t.Kids {
		n.Children[i] = fromTree(k)
	}
	return n
}

func labelOf(t *tree.Node) string {
	if len(t.Lits) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range t.Lits {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		fmt.Fprintf(&b, "%v", l)
	}
	return b.String()
}

// Clone deep-copies the tree (without finishing it).
func Clone(n *Node) *Node {
	c := &Node{Type: n.Type, Label: n.Label}
	c.Children = make([]*Node, len(n.Children))
	for i, k := range n.Children {
		c.Children[i] = Clone(k)
	}
	return c
}

// Isomorphic reports whether two finished subtrees are isomorphic.
func Isomorphic(a, b *Node) bool { return a.hash == b.hash }

// Walk visits the subtree in preorder.
func Walk(n *Node, f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		Walk(c, f)
	}
}

// WalkPost visits the subtree in postorder.
func WalkPost(n *Node, f func(*Node)) {
	for _, c := range n.Children {
		WalkPost(c, f)
	}
	f(n)
}

// Equal reports deep equality of two rose trees (types, labels, shape).
func Equal(a, b *Node) bool {
	if a.Type != b.Type || a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the rose tree compactly.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b)
	return b.String()
}

func (n *Node) format(b *strings.Builder) {
	b.WriteString(n.Type)
	if n.Label != "" {
		fmt.Fprintf(b, "{%s}", n.Label)
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.format(b)
		}
		b.WriteByte(')')
	}
}
