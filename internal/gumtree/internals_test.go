package gumtree

import "testing"

func TestHeightList(t *testing.T) {
	a := ft(New("A", "", New("B", "", New("C", "")), New("D", "")))
	h := &heightList{}
	h.push(a)
	if got := h.peekMax(); got != 3 {
		t.Errorf("peekMax = %d", got)
	}
	popped := h.popHeight(3)
	if len(popped) != 1 || popped[0] != a {
		t.Errorf("popHeight(3) = %v", popped)
	}
	if h.peekMax() != 0 {
		t.Error("list should be empty")
	}
	h.open(a)
	if got := h.peekMax(); got != 2 {
		t.Errorf("after open, peekMax = %d", got)
	}
	if got := len(h.popHeight(1)); got != 1 { // the D leaf
		t.Errorf("leaves popped = %d", got)
	}
	if got := len(h.popHeight(2)); got != 1 { // the B subtree
		t.Errorf("height-2 popped = %d", got)
	}
}

func TestAmbScore(t *testing.T) {
	p1 := ft(New("P", "", New("X", "x")))
	p2 := ft(New("P", "", New("X", "x")))
	p3 := ft(New("Q", "zzz", New("X", "x")))
	root := ft(New("X", "x"))

	if got := ambScore(p1.Children[0], p2.Children[0]); got != 2 {
		t.Errorf("identical parents score = %d, want 2", got)
	}
	if got := ambScore(p1.Children[0], p3.Children[0]); got != 0 {
		t.Errorf("different-type parents score = %d, want 0", got)
	}
	if got := ambScore(root, root); got != 3 {
		t.Errorf("both roots score = %d, want 3", got)
	}
	if got := ambScore(root, p1.Children[0]); got != 0 {
		t.Errorf("root/non-root score = %d, want 0", got)
	}
	p4 := ft(New("P", "other", New("X", "x")))
	if got := ambScore(p1.Children[0], p4.Children[0]); got != 1 {
		t.Errorf("same-type different-hash parents score = %d, want 1", got)
	}
}

func TestLcsPairs(t *testing.T) {
	mk := func(tags ...string) ([]*wnode, []*Node) {
		var ws []*wnode
		var ns []*Node
		for _, tag := range tags {
			n := &Node{Type: tag}
			ws = append(ws, &wnode{typ: tag, dst: n})
			ns = append(ns, n)
		}
		return ws, ns
	}
	// s1 realizes s2 shuffled: LCS by identity of the realized dst node.
	ws, ns := mk("a", "b", "c", "d")
	shuffled := []*Node{ns[1], ns[0], ns[2], ns[3]}
	marks := lcsPairs(ws, shuffled, func(w *wnode, n *Node) bool { return w.dst == n })
	common := 0
	for _, m := range marks.a {
		if m {
			common++
		}
	}
	if common != 3 { // b,c,d or a,c,d
		t.Errorf("LCS length = %d, want 3", common)
	}
	empty := lcsPairs(nil, nil, func(*wnode, *Node) bool { return false })
	if len(empty.a) != 0 || len(empty.b) != 0 {
		t.Error("empty LCS should be empty")
	}
}

func TestContainerCandidates(t *testing.T) {
	src := ft(New("Block", "", New("Stmt", "a"), New("Stmt", "b")))
	dst := ft(New("Block", "", New("Stmt", "a"), New("Stmt", "c")))
	m := NewMapping()
	m.Add(src.Children[0], dst.Children[0])
	cands := containerCandidates(src, dst, m)
	if len(cands) != 1 || cands[0] != dst {
		t.Errorf("candidates = %v", cands)
	}
	// A matched dst container is not a candidate.
	m2 := NewMapping()
	m2.Add(src.Children[0], dst.Children[0])
	m2.Add(src, dst)
	if got := containerCandidates(src, dst, m2); len(got) != 0 {
		t.Errorf("matched container offered as candidate: %v", got)
	}
}

func TestMatchOptionsRespected(t *testing.T) {
	// With a prohibitive MinHeight nothing matches top-down; the identical
	// trees still match through the bottom-up root rule + recovery.
	src := ft(New("A", "", New("B", "x"), New("C", "y")))
	dst := ft(New("A", "", New("B", "x"), New("C", "y")))
	m := Match(src, dst, Options{MinHeight: 100, MinDice: 0.5, MaxSize: 100})
	if !m.HasSrc(src) {
		t.Error("roots of equal type should always pair up")
	}
	script, patched := EditScript(src, dst, m)
	if script.Len() != 0 || !Equal(patched, dst) {
		t.Errorf("identical trees should yield an empty script, got %s", script)
	}
}
