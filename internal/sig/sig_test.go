package sig

import (
	"strings"
	"testing"
)

func TestBaseTypeAdmits(t *testing.T) {
	cases := []struct {
		bt   BaseType
		v    any
		want bool
	}{
		{StringLit, "x", true},
		{StringLit, int64(1), false},
		{IntLit, int64(1), true},
		{IntLit, 1, false}, // plain int is not a literal type
		{IntLit, "1", false},
		{FloatLit, 1.5, true},
		{FloatLit, int64(1), false},
		{BoolLit, true, true},
		{BoolLit, "true", false},
		{AnyLit, "x", true},
		{AnyLit, int64(1), true},
		{AnyLit, 1.5, true},
		{AnyLit, false, true},
		{AnyLit, []int{1}, false}, // not a literal type at all
	}
	for _, c := range cases {
		if got := c.bt.Admits(c.v); got != c.want {
			t.Errorf("%s.Admits(%#v) = %v, want %v", c.bt, c.v, got, c.want)
		}
	}
}

func TestBaseTypeString(t *testing.T) {
	names := map[BaseType]string{
		AnyLit: "any", StringLit: "string", IntLit: "int", FloatLit: "float", BoolLit: "bool",
	}
	for bt, want := range names {
		if bt.String() != want {
			t.Errorf("BaseType(%d).String() = %q, want %q", bt, bt.String(), want)
		}
	}
	if !strings.Contains(BaseType(99).String(), "99") {
		t.Errorf("unknown base type should render its number")
	}
}

func TestSchemaHasRootSignature(t *testing.T) {
	s := NewSchema("test")
	g := s.Lookup(RootTag)
	if g == nil {
		t.Fatal("root tag not declared")
	}
	if len(g.Kids) != 1 || g.Kids[0].Link != RootLink || g.Kids[0].Sort != Any {
		t.Errorf("root signature kids = %v, want single RootLink:Any", g.Kids)
	}
	if g.Result != RootSort {
		t.Errorf("root result = %s, want %s", g.Result, RootSort)
	}
}

func TestDeclareRejectsDuplicatesAndBadSigs(t *testing.T) {
	s := NewSchema("test")
	ok := Sig{Tag: "A", Result: "Exp"}
	if err := s.Declare(ok); err != nil {
		t.Fatalf("Declare(A): %v", err)
	}
	if err := s.Declare(ok); err == nil {
		t.Error("redeclaring tag A should fail")
	}
	bad := []Sig{
		{Tag: "", Result: "Exp"},
		{Tag: "B", Result: ""},
		{Tag: "C", Result: "Exp", Kids: []KidSpec{{Link: "", Sort: "Exp"}}},
		{Tag: "D", Result: "Exp", Kids: []KidSpec{{Link: "x", Sort: "Exp"}, {Link: "x", Sort: "Exp"}}},
		{Tag: "E", Result: "Exp", Lits: []LitSpec{{Link: "", Type: IntLit}}},
		{Tag: "F", Result: "Exp",
			Kids: []KidSpec{{Link: "x", Sort: "Exp"}},
			Lits: []LitSpec{{Link: "x", Type: IntLit}}}, // kid/lit link clash
	}
	for _, g := range bad {
		if err := s.Declare(g); err == nil {
			t.Errorf("Declare(%v) should fail", g)
		}
	}
}

func TestDeclareCopiesSlices(t *testing.T) {
	s := NewSchema("test")
	kids := []KidSpec{{Link: "x", Sort: "Exp"}}
	if err := s.Declare(Sig{Tag: "A", Kids: kids, Result: "Exp"}); err != nil {
		t.Fatal(err)
	}
	kids[0].Link = "mutated"
	if got := s.Lookup("A").Kids[0].Link; got != "x" {
		t.Errorf("schema shared caller's slice: link = %q", got)
	}
}

func TestSubtyping(t *testing.T) {
	s := NewSchema("test")
	s.MustDeclareSort("Stmt", Any)
	s.MustDeclareSort("Expr", Any)
	s.MustDeclareSort("Lit", "Expr")
	s.MustDeclareSort("NumLit", "Lit")

	cases := []struct {
		sub, super Sort
		want       bool
	}{
		{"NumLit", "NumLit", true},
		{"NumLit", "Lit", true},
		{"NumLit", "Expr", true},
		{"NumLit", Any, true},
		{"Lit", "NumLit", false},
		{"Stmt", "Expr", false},
		{"Expr", "Stmt", false},
		{"Unknown", Any, true},
		{"Unknown", "Expr", false},
		{Any, "Expr", false},
	}
	for _, c := range cases {
		if got := s.IsSubsort(c.sub, c.super); got != c.want {
			t.Errorf("IsSubsort(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestDeclareSortRejectsCyclesAndRedeclaration(t *testing.T) {
	s := NewSchema("test")
	s.MustDeclareSort("B", "A")
	s.MustDeclareSort("C", "B")
	if err := s.DeclareSort("A", "C"); err == nil {
		t.Error("cycle A ≤ C ≤ B ≤ A should be rejected")
	}
	if err := s.DeclareSort("B", "C"); err == nil {
		t.Error("redeclaring B under a different parent should fail")
	}
	if err := s.DeclareSort("B", "A"); err != nil {
		t.Errorf("identical redeclaration should be a no-op, got %v", err)
	}
	if err := s.DeclareSort(Any, "A"); err == nil {
		t.Error("declaring a supersort of Any should fail")
	}
}

func TestTagQueries(t *testing.T) {
	s := NewSchema("test")
	s.MustDeclareSort("Lit", "Expr")
	s.MustDeclare(Sig{Tag: "Num", Result: "Lit"})
	s.MustDeclare(Sig{Tag: "Add", Result: "Expr"})
	s.MustDeclare(Sig{Tag: "If", Result: "Stmt"})

	if got, ok := s.ResultSort("Num"); !ok || got != "Lit" {
		t.Errorf("ResultSort(Num) = %s,%v", got, ok)
	}
	if _, ok := s.ResultSort("Nope"); ok {
		t.Error("ResultSort of undeclared tag should report false")
	}
	exprTags := s.TagsOfSort("Expr")
	if len(exprTags) != 2 || exprTags[0] != "Add" || exprTags[1] != "Num" {
		t.Errorf("TagsOfSort(Expr) = %v", exprTags)
	}
	anyTags := s.TagsOfSort(Any)
	if len(anyTags) != 3 {
		t.Errorf("TagsOfSort(Any) = %v, want all 3 user tags", anyTags)
	}
	all := s.Tags()
	if len(all) != 4 { // 3 user tags + RootTag
		t.Errorf("Tags() = %v", all)
	}
}

func TestSigIndexesAndString(t *testing.T) {
	g := Sig{
		Tag:    "Call",
		Kids:   []KidSpec{{Link: "a", Sort: "Exp"}},
		Lits:   []LitSpec{{Link: "f", Type: StringLit}},
		Result: "Exp",
	}
	if g.KidIndex("a") != 0 || g.KidIndex("f") != -1 {
		t.Error("KidIndex wrong")
	}
	if g.LitIndex("f") != 0 || g.LitIndex("a") != -1 {
		t.Error("LitIndex wrong")
	}
	str := g.String()
	for _, part := range []string{"Call", "a:Exp", "f:string", "→ Exp"} {
		if !strings.Contains(str, part) {
			t.Errorf("Sig.String() = %q lacks %q", str, part)
		}
	}
}
