// Package sig defines the static vocabulary of typed trees: constructor
// tags, links, sorts with subtyping, literal base types, and constructor
// signatures Σ.
//
// A signature, written in the paper as
//
//	Σ ::= ε | Σ, tag : (⟨x1:T1, …, xm:Tm⟩, ⟨y1:B1, …, yn:Bn⟩) → T
//
// assigns each constructor tag a list of child links with their expected
// sorts, a list of literal links with their base types, and a result sort.
// A Schema collects the signatures of a tree language together with its
// sort-subtyping relation; it is consulted by tree construction, by the
// truechange linear type checker, and by the standard semantics.
package sig

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Tag names a tree constructor (the paper writes tags without quotes,
// e.g. Add, Mul, Var).
type Tag string

// RootTag is the tag of the pre-defined root node that anchors every
// mutable tree. Its signature is (⟨RootLink : Any⟩, ⟨⟩) → Root.
const RootTag Tag = "⊤Root"

// Link names the edge between a parent node and one of its children or
// literals (the paper writes links as quoted strings, e.g. "e1").
type Link string

// RootLink is the single child link of the pre-defined root node.
const RootLink Link = "root"

// Sort is a tree type. Sorts form a subtyping hierarchy with Any at the
// top; constructor result sorts and child expectations are drawn from it.
type Sort string

const (
	// Any is the top sort: every sort is a subsort of Any.
	Any Sort = "Any"
	// RootSort is the sort of the pre-defined root node.
	RootSort Sort = "Root"
)

// BaseType classifies literal values stored at nodes.
type BaseType uint8

// The base types supported for literals.
const (
	AnyLit BaseType = iota // any literal value
	StringLit
	IntLit
	FloatLit
	BoolLit
)

// String returns the name of the base type.
func (b BaseType) String() string {
	switch b {
	case AnyLit:
		return "any"
	case StringLit:
		return "string"
	case IntLit:
		return "int"
	case FloatLit:
		return "float"
	case BoolLit:
		return "bool"
	default:
		return fmt.Sprintf("BaseType(%d)", uint8(b))
	}
}

// Admits reports whether the Go value v conforms to base type b. Literals
// are restricted to string, int64, float64, and bool.
func (b BaseType) Admits(v any) bool {
	switch b {
	case AnyLit:
		switch v.(type) {
		case string, int64, float64, bool:
			return true
		}
		return false
	case StringLit:
		_, ok := v.(string)
		return ok
	case IntLit:
		_, ok := v.(int64)
		return ok
	case FloatLit:
		_, ok := v.(float64)
		return ok
	case BoolLit:
		_, ok := v.(bool)
		return ok
	default:
		return false
	}
}

// KidSpec declares one child slot of a constructor: the link that names it
// and the sort a subtree attached there must have (up to subtyping).
type KidSpec struct {
	Link Link
	Sort Sort
}

// LitSpec declares one literal slot of a constructor.
type LitSpec struct {
	Link Link
	Type BaseType
}

// Sig is the signature of a single constructor tag.
type Sig struct {
	Tag    Tag
	Kids   []KidSpec
	Lits   []LitSpec
	Result Sort
}

// KidIndex returns the position of the child link l, or -1.
func (s *Sig) KidIndex(l Link) int {
	for i, k := range s.Kids {
		if k.Link == l {
			return i
		}
	}
	return -1
}

// LitIndex returns the position of the literal link l, or -1.
func (s *Sig) LitIndex(l Link) int {
	for i, k := range s.Lits {
		if k.Link == l {
			return i
		}
	}
	return -1
}

// String renders the signature in the paper's notation.
func (s *Sig) String() string {
	var b strings.Builder
	b.WriteString(string(s.Tag))
	b.WriteString(" : (⟨")
	for i, k := range s.Kids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", k.Link, k.Sort)
	}
	b.WriteString("⟩, ⟨")
	for i, l := range s.Lits {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", l.Link, l.Type)
	}
	fmt.Fprintf(&b, "⟩) → %s", s.Result)
	return b.String()
}

// Schema is a set of constructor signatures together with a sort hierarchy.
// The zero value is not usable; construct schemas with NewSchema.
type Schema struct {
	name   string
	sigs   map[Tag]*Sig
	parent map[Sort]Sort // immediate supersort; absent entries have parent Any
	fp     string        // cached Fingerprint
}

// NewSchema returns an empty schema with the given descriptive name. The
// pre-defined root signature is installed automatically.
func NewSchema(name string) *Schema {
	s := &Schema{
		name:   name,
		sigs:   make(map[Tag]*Sig),
		parent: make(map[Sort]Sort),
	}
	s.mustDeclare(Sig{
		Tag:    RootTag,
		Kids:   []KidSpec{{Link: RootLink, Sort: Any}},
		Result: RootSort,
	})
	return s
}

// Name returns the schema's descriptive name.
func (s *Schema) Name() string { return s.name }

// DeclareSort registers sub as an immediate subsort of super. Declaring a
// sort under Any is allowed but redundant. DeclareSort returns an error if
// the declaration would create a cycle or contradict an earlier one.
func (s *Schema) DeclareSort(sub, super Sort) error {
	if sub == Any {
		return fmt.Errorf("sig: cannot declare supersort of Any")
	}
	if old, ok := s.parent[sub]; ok && old != super {
		return fmt.Errorf("sig: sort %s already declared under %s, cannot redeclare under %s", sub, old, super)
	}
	// Reject cycles: walking up from super must not reach sub.
	for cur := super; cur != Any; {
		if cur == sub {
			return fmt.Errorf("sig: sort cycle: %s ≤ %s ≤ %s", sub, super, sub)
		}
		next, ok := s.parent[cur]
		if !ok {
			break
		}
		cur = next
	}
	s.parent[sub] = super
	return nil
}

// MustDeclareSort is DeclareSort but panics on error; intended for static
// schema definitions in package init code.
func (s *Schema) MustDeclareSort(sub, super Sort) {
	if err := s.DeclareSort(sub, super); err != nil {
		panic(err)
	}
}

// IsSubsort reports whether sub <: super in the schema's hierarchy. Every
// sort is a subsort of itself and of Any.
func (s *Schema) IsSubsort(sub, super Sort) bool {
	if super == Any || sub == super {
		return true
	}
	for cur := sub; ; {
		next, ok := s.parent[cur]
		if !ok {
			return false
		}
		if next == super {
			return true
		}
		cur = next
	}
}

// Declare registers the signature of a constructor tag. Links must be
// distinct within the signature, and the tag must be new.
func (s *Schema) Declare(g Sig) error {
	if g.Tag == "" {
		return fmt.Errorf("sig: empty tag")
	}
	if _, ok := s.sigs[g.Tag]; ok {
		return fmt.Errorf("sig: tag %s already declared", g.Tag)
	}
	seen := make(map[Link]bool, len(g.Kids)+len(g.Lits))
	for _, k := range g.Kids {
		if k.Link == "" {
			return fmt.Errorf("sig: tag %s has an empty kid link", g.Tag)
		}
		if seen[k.Link] {
			return fmt.Errorf("sig: tag %s declares link %q twice", g.Tag, k.Link)
		}
		seen[k.Link] = true
	}
	for _, l := range g.Lits {
		if l.Link == "" {
			return fmt.Errorf("sig: tag %s has an empty literal link", g.Tag)
		}
		if seen[l.Link] {
			return fmt.Errorf("sig: tag %s declares link %q twice", g.Tag, l.Link)
		}
		seen[l.Link] = true
	}
	if g.Result == "" {
		return fmt.Errorf("sig: tag %s has no result sort", g.Tag)
	}
	cp := g
	cp.Kids = append([]KidSpec(nil), g.Kids...)
	cp.Lits = append([]LitSpec(nil), g.Lits...)
	s.sigs[g.Tag] = &cp
	return nil
}

func (s *Schema) mustDeclare(g Sig) {
	if err := s.Declare(g); err != nil {
		panic(err)
	}
}

// MustDeclare is Declare but panics on error; intended for static schema
// definitions in package init code.
func (s *Schema) MustDeclare(g Sig) { s.mustDeclare(g) }

// Lookup returns the signature of tag, or nil if the tag is not declared.
func (s *Schema) Lookup(t Tag) *Sig { return s.sigs[t] }

// Fingerprint returns a digest of the schema's declarations: its name,
// every signature in tag order, and the sort hierarchy. Two schemas with
// the same fingerprint declare the same vocabulary, so digest caches (the
// engine's cross-diff memo) use it to partition their key space per
// schema. The fingerprint is computed on first use and cached; do not
// declare further tags or sorts after calling it.
func (s *Schema) Fingerprint() string {
	if s.fp != "" {
		return s.fp
	}
	h := sha256.New()
	io.WriteString(h, s.name)
	for _, t := range s.Tags() {
		io.WriteString(h, s.sigs[t].String())
	}
	subs := make([]Sort, 0, len(s.parent))
	for sub := range s.parent {
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
	for _, sub := range subs {
		fmt.Fprintf(h, "%s<:%s;", sub, s.parent[sub])
	}
	s.fp = string(h.Sum(nil))
	return s.fp
}

// ResultSort returns the result sort of tag and whether it is declared.
func (s *Schema) ResultSort(t Tag) (Sort, bool) {
	g, ok := s.sigs[t]
	if !ok {
		return "", false
	}
	return g.Result, true
}

// Tags returns all declared tags in lexicographic order (including RootTag).
func (s *Schema) Tags() []Tag {
	out := make([]Tag, 0, len(s.sigs))
	for t := range s.sigs {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TagsOfSort returns all tags whose result sort is a subsort of want,
// in lexicographic order. It is used by generators and by the corpus.
func (s *Schema) TagsOfSort(want Sort) []Tag {
	var out []Tag
	for t, g := range s.sigs {
		if t == RootTag {
			continue
		}
		if s.IsSubsort(g.Result, want) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
