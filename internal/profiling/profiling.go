// Package profiling starts and stops the standard Go profilers behind one
// call, so every CLI (cmd/bench, cmd/truediff, cmd/evaluate) wires the
// -cpuprofile, -memprofile, and -exectrace flags identically.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable the corresponding
// profiler.
type Config struct {
	// CPUProfile receives a pprof CPU profile covering Start..stop.
	CPUProfile string
	// MemProfile receives a heap profile taken at stop time (after a
	// forced GC, so it shows live objects).
	MemProfile string
	// ExecTrace receives a runtime/trace execution trace covering
	// Start..stop.
	ExecTrace string
}

// Enabled reports whether any profiler is configured.
func (c Config) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.ExecTrace != ""
}

// Start launches the configured profilers and returns the stop function
// that finishes them and closes their files. On error nothing is left
// running. The returned stop is never nil and is safe to call exactly
// once; it reports the first failure of profile finalization.
func Start(c Config) (stop func() error, err error) {
	var stops []func() error
	abort := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}

	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			abort()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			abort()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if c.ExecTrace != "" {
		f, err := os.Create(c.ExecTrace)
		if err != nil {
			abort()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			abort()
			return nil, fmt.Errorf("profiling: start execution trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if c.MemProfile != "" {
		path := c.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("profiling: write heap profile: %w", werr)
			}
			return cerr
		})
	}

	return func() error {
		var errs []error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}, nil
}
