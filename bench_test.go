// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md
// experiment index):
//
//	BenchmarkFig4Conciseness   — Figure 4: patch sizes of the three systems
//	BenchmarkFig5Throughput    — Figure 5: diffing throughput (nodes/ms)
//	BenchmarkLinearScaling     — Theorem 4.1: ns/node across tree sizes
//	BenchmarkIncA*             — §6: incremental analysis vs reanalysis
//	BenchmarkIndex*            — §6: one-to-one vs many-to-one link index
//	BenchmarkAblation*         — design-choice ablations from DESIGN.md §5
//	BenchmarkLinearDiffBaseline— E9: the typed Cpy/Ins/Del baseline
//	BenchmarkLineDiffBaseline  — E10: Asenov-style line-based diffing
//	BenchmarkMatchingBased     — E11: type-safe scripts from Gumtree matching
//	BenchmarkJSONDiff          — truediff over JSON documents
//	BenchmarkPatch             — standard-semantics patching throughput
//	BenchmarkParse             — pylang parser throughput
//
// Custom metrics (edits/file, nodes/ms, …) are attached via b.ReportMetric.
package repro_test

import (
	"context"
	"sync"
	"testing"

	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/gumtree"
	"repro/internal/hdiff"
	"repro/internal/inca"
	"repro/internal/jsonlang"
	"repro/internal/lineardiff"
	"repro/internal/linediff"
	"repro/internal/mtree"
	"repro/internal/pylang"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// fixture is the shared benchmark corpus, generated once.
var (
	fixtureOnce sync.Once
	fixture     *corpus.History
)

func benchCorpus(b *testing.B) *corpus.History {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture = corpus.Generate(corpus.Options{
			Seed: 42, Files: 8, Commits: 40, MaxFilesPerCommit: 3,
			MinNodes: 250, MaxNodes: 1200, MaxEditsPerFile: 4,
		})
	})
	return fixture
}

// BenchmarkFig4Conciseness measures patch computation across the corpus for
// each system and reports the mean patch size (the Figure 4 metric).
func BenchmarkFig4Conciseness(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	sch := h.Factory.Schema()
	alloc := h.Factory.Alloc()

	b.Run("truediff", func(b *testing.B) {
		d := truediff.New(sch)
		totalEdits, files := 0, 0
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				res, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), alloc)
				if err != nil {
					b.Fatal(err)
				}
				totalEdits += res.Script.EditCount()
				files++
			}
		}
		b.ReportMetric(float64(totalEdits)/float64(files), "edits/file")
	})
	b.Run("gumtree", func(b *testing.B) {
		totalEdits, files := 0, 0
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				script, _ := gumtree.Diff(gumtree.FromTree(fc.Before), gumtree.FromTree(fc.After),
					gumtree.DefaultOptions())
				totalEdits += script.Len()
				files++
			}
		}
		b.ReportMetric(float64(totalEdits)/float64(files), "edits/file")
	})
	b.Run("hdiff", func(b *testing.B) {
		totalSize, files := 0, 0
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				patch := hdiff.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), hdiff.DefaultOptions())
				totalSize += patch.Size()
				files++
			}
		}
		b.ReportMetric(float64(totalSize)/float64(files), "edits/file")
	})
}

// BenchmarkFig5Throughput measures nodes/ms on the corpus (Figure 5).
func BenchmarkFig5Throughput(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	sch := h.Factory.Schema()
	alloc := h.Factory.Alloc()
	totalNodes := 0
	for _, fc := range changes {
		totalNodes += fc.Before.Size() + fc.After.Size()
	}
	reportNodesPerMS := func(b *testing.B) {
		nodes := float64(totalNodes) * float64(b.N)
		b.ReportMetric(nodes/(float64(b.Elapsed().Nanoseconds())/1e6), "nodes/ms")
	}

	b.Run("truediff", func(b *testing.B) {
		d := truediff.New(sch)
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				if _, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), alloc); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportNodesPerMS(b)
	})
	b.Run("gumtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				gumtree.Diff(gumtree.FromTree(fc.Before), gumtree.FromTree(fc.After),
					gumtree.DefaultOptions())
			}
		}
		reportNodesPerMS(b)
	})
	b.Run("hdiff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				hdiff.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), hdiff.DefaultOptions())
			}
		}
		reportNodesPerMS(b)
	})
}

// BenchmarkLinearScaling validates Theorem 4.1: ns/node stays flat as trees
// grow by two orders of magnitude.
func BenchmarkLinearScaling(b *testing.B) {
	for _, size := range []int{500, 5000, 50000} {
		h := corpus.Generate(corpus.Options{
			Seed: int64(size), Files: 1, Commits: 1, MaxFilesPerCommit: 1,
			MinNodes: size, MaxNodes: size + size/10 + 1, MaxEditsPerFile: 3,
		})
		fc := h.Changes()[0]
		alloc := h.Factory.Alloc()
		d := truediff.New(h.Factory.Schema())
		nodes := float64(fc.Before.Size() + fc.After.Size())
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), alloc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nodes, "ns/node")
		})
	}
}

func sizeName(size int) string {
	switch {
	case size >= 1000000:
		return "1M"
	case size >= 50000:
		return "50k"
	case size >= 5000:
		return "5k"
	default:
		return "500"
	}
}

// incaFixture prepares a (before, after, script) triple plus drivers.
func incaFixture(b *testing.B) (*corpus.History, corpus.FileChange) {
	b.Helper()
	h := corpus.Generate(corpus.Options{
		Seed: 7, Files: 1, Commits: 1, MaxFilesPerCommit: 1,
		MinNodes: 300, MaxNodes: 500, MaxEditsPerFile: 3,
	})
	return h, h.Changes()[0]
}

// BenchmarkIncAIncremental measures diff + incremental Datalog maintenance
// per change; BenchmarkIncARecompute the from-scratch reanalysis baseline.
func BenchmarkIncAIncremental(b *testing.B) {
	h, fc := incaFixture(b)
	sch := h.Factory.Schema()
	d := truediff.New(sch)
	res, err := d.Diff(fc.Before, fc.After, h.Factory.Alloc())
	if err != nil {
		b.Fatal(err)
	}
	inverse, err := d.Diff(res.Patched, tree.Clone(fc.Before, h.Factory.Alloc(), tree.SHA256), h.Factory.Alloc())
	if err != nil {
		b.Fatal(err)
	}
	driver, err := inca.NewDriver(sch, inca.StandardRules(), inca.NewOneToOne())
	if err != nil {
		b.Fatal(err)
	}
	if err := driver.InitTree(fc.Before); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Apply the change and roll it back so every iteration starts from
		// the same database state.
		if err := driver.ProcessScript(res.Script); err != nil {
			b.Fatal(err)
		}
		if err := driver.ProcessScript(inverse.Script); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncARecompute initializes the analysis from scratch per change.
func BenchmarkIncARecompute(b *testing.B) {
	h, fc := incaFixture(b)
	sch := h.Factory.Schema()
	for i := 0; i < b.N; i++ {
		driver, err := inca.NewDriver(sch, inca.StandardRules(), inca.NewOneToOne())
		if err != nil {
			b.Fatal(err)
		}
		if err := driver.InitTree(fc.After); err != nil {
			b.Fatal(err)
		}
	}
}

// Index micro-benchmarks: the §6 claim that type safety permits the compact
// one-to-one encoding.
func benchIndex(b *testing.B, mk func() inca.LinkIndex) {
	const n = 1000
	for i := 0; i < b.N; i++ {
		ix := mk()
		for j := 0; j < n; j++ {
			if err := ix.Attach("e1", uri.URI(j), uri.URI(j+n)); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < n; j++ {
			ix.Kid("e1", uri.URI(j))
			ix.Parent("e1", uri.URI(j+n))
		}
		for j := 0; j < n; j++ {
			if err := ix.Detach("e1", uri.URI(j), uri.URI(j+n)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/(3*n), "ns/indexop")
}

// BenchmarkIndexOneToOne measures the typed one-to-one link index.
func BenchmarkIndexOneToOne(b *testing.B) {
	benchIndex(b, func() inca.LinkIndex { return inca.NewOneToOne() })
}

// BenchmarkIndexManyToOne measures the untyped many-to-one link index.
func BenchmarkIndexManyToOne(b *testing.B) {
	benchIndex(b, func() inca.LinkIndex { return inca.NewManyToOne() })
}

// Ablations (DESIGN.md §5).

// BenchmarkAblationEquivalence compares the paper's candidate/preference
// configuration against exact-only and no-preference selection.
func BenchmarkAblationEquivalence(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	alloc := h.Factory.Alloc()
	for _, cfg := range []struct {
		name string
		mode truediff.EquivMode
	}{
		{"structural+preference", truediff.StructuralWithLiteralPreference},
		{"exact-only", truediff.ExactOnly},
		{"no-preference", truediff.StructuralNoPreference},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := truediff.NewWithOptions(h.Factory.Schema(), truediff.Options{Equiv: cfg.mode})
			total, files := 0, 0
			for i := 0; i < b.N; i++ {
				for _, fc := range changes {
					res, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
						tree.Clone(fc.After, alloc, tree.SHA256), alloc)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Script.EditCount()
					files++
				}
			}
			b.ReportMetric(float64(total)/float64(files), "edits/file")
		})
	}
}

// BenchmarkAblationOrder compares highest-first candidate selection against
// plain FIFO (fragmentation-prone) selection.
func BenchmarkAblationOrder(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	alloc := h.Factory.Alloc()
	for _, cfg := range []struct {
		name  string
		order truediff.SelectionOrder
	}{
		{"highest-first", truediff.HighestFirst},
		{"fifo", truediff.FIFO},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := truediff.NewWithOptions(h.Factory.Schema(), truediff.Options{Order: cfg.order})
			total, files := 0, 0
			for i := 0; i < b.N; i++ {
				for _, fc := range changes {
					res, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
						tree.Clone(fc.After, alloc, tree.SHA256), alloc)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Script.EditCount()
					files++
				}
			}
			b.ReportMetric(float64(total)/float64(files), "edits/file")
		})
	}
}

// BenchmarkAblationHash compares SHA-256 against FNV-64 for the subtree
// equivalence hashes (tree construction + diff).
func BenchmarkAblationHash(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	alloc := h.Factory.Alloc()
	for _, cfg := range []struct {
		name string
		kind tree.HashKind
	}{
		{"sha256", tree.SHA256},
		{"fnv64", tree.FNV64},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := truediff.New(h.Factory.Schema())
			for i := 0; i < b.N; i++ {
				for _, fc := range changes {
					if _, err := d.Diff(tree.Clone(fc.Before, alloc, cfg.kind),
						tree.Clone(fc.After, alloc, cfg.kind), alloc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkLinearDiffBaseline exercises the typed Cpy/Ins/Del baseline of
// the intro (E9); its quadratic DP restricts it to small trees.
func BenchmarkLinearDiffBaseline(b *testing.B) {
	g := exp.NewGen(13)
	src := g.Tree(300)
	dst := g.MutateN(src, 3)
	b.ResetTimer()
	var ops int
	for i := 0; i < b.N; i++ {
		s, err := lineardiff.Diff(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		ops = s.Len()
	}
	b.ReportMetric(float64(ops), "ops/script")
}

// BenchmarkPatch measures standard-semantics patch application.
func BenchmarkPatch(b *testing.B) {
	h, fc := incaFixture(b)
	sch := h.Factory.Schema()
	d := truediff.New(sch)
	res, err := d.Diff(fc.Before, fc.After, h.Factory.Alloc())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mt, err := mtree.FromTree(sch, fc.Before)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := mt.Patch(res.Script); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Script.Len()), "edits/patch")
}

// BenchmarkParse measures pylang parsing throughput on a rendered module.
func BenchmarkParse(b *testing.B) {
	_, fc := incaFixture(b)
	src := pylang.Render(fc.Before)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pylang.ParseNew(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineDiffBaseline exercises the Asenov-style line-based
// structural diff of related work §7: single-node-per-line rendering plus
// Myers diff with move recovery.
func BenchmarkLineDiffBaseline(b *testing.B) {
	h, fc := incaFixture(b)
	_ = h
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		res := linediff.Diff(fc.Before, fc.After)
		size = res.PatchSize()
	}
	b.ReportMetric(float64(size), "lines/patch")
}

// BenchmarkJSONDiff measures truediff over JSON document trees (the
// databases use case of the paper's introduction).
func BenchmarkJSONDiff(b *testing.B) {
	codec := jsonlang.NewCodec()
	grow := func(n int) string {
		doc := `{"items":[`
		for i := 0; i < n; i++ {
			if i > 0 {
				doc += ","
			}
			doc += fmt.Sprintf(`{"id":%d,"name":"item%d","tags":["a","b"],"price":%d.5}`, i, i, i)
		}
		return doc + `],"version":1}`
	}
	src, err := codec.Parse(grow(50))
	if err != nil {
		b.Fatal(err)
	}
	dstText := grow(50)
	dstText = strings.Replace(dstText, `"version":1`, `"version":2`, 1)
	dstText = strings.Replace(dstText, `"name":"item7"`, `"name":"renamed"`, 1)
	dst, err := codec.Parse(dstText)
	if err != nil {
		b.Fatal(err)
	}
	d := truediff.New(codec.Schema())
	nodes := float64(src.Size() + dst.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Diff(tree.Clone(src, codec.Alloc(), tree.SHA256),
			tree.Clone(dst, codec.Alloc(), tree.SHA256), codec.Alloc()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nodes, "nodes")
}

// BenchmarkEngineBatch measures the concurrent batch engine against plain
// sequential diffing on the same corpus replay. Both sides do the full job
// per file change — prepare the trees and diff them — but the engine
// amortizes across the batch: engine-managed ingest interns trees by
// content, so re-ingesting a version the engine has seen is a map lookup
// instead of a clone-and-hash, and each diff draws its scratch state
// (registry, assignment map, edit buffer, heap) from a pool instead of
// allocating fresh. Snapshot metrics (pool/store hit rates) are attached
// to the engine runs.
func BenchmarkEngineBatch(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	sch := h.Factory.Schema()
	totalNodes := 0
	for _, fc := range changes {
		totalNodes += fc.Before.Size() + fc.After.Size()
	}
	reportNodesPerMS := func(b *testing.B) {
		nodes := float64(totalNodes) * float64(b.N)
		b.ReportMetric(nodes/(float64(b.Elapsed().Nanoseconds())/1e6), "nodes/ms")
	}

	b.Run("sequential", func(b *testing.B) {
		d := truediff.New(sch)
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				alloc := uri.NewAllocator()
				if _, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), alloc); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportNodesPerMS(b)
	})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("engine-%d", workers), func(b *testing.B) {
			e := engine.New(sch, engine.Config{Workers: workers})
			// A cancellable context keeps the in-phase cancellation
			// checkpoints live, so the benchmark prices them in.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < b.N; i++ {
				pairs := make([]engine.Pair, len(changes))
				for j, fc := range changes {
					// nil alloc selects engine-managed ingest: trees are
					// interned by content, so re-ingesting a version the
					// engine has seen (every change's Before is the previous
					// change's After) is a map lookup, not a clone.
					pairs[j] = engine.Pair{
						Source: e.Ingest(fc.Before, nil),
						Target: e.Ingest(fc.After, nil),
					}
				}
				results, err := e.DiffBatch(ctx, pairs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			reportNodesPerMS(b)
			snap := e.Snapshot()
			b.ReportMetric(100*snap.PoolHitRate, "pool-hit-%")
			b.ReportMetric(100*snap.StoreHitRate, "store-hit-%")
		})
	}
}

// BenchmarkMatchingBased compares the §7 exploration — type-safe truechange
// scripts generated from Gumtree's similarity matching — against truediff's
// own hash-based assignment, on the same corpus.
func BenchmarkMatchingBased(b *testing.B) {
	h := benchCorpus(b)
	changes := h.Changes()
	sch := h.Factory.Schema()
	alloc := h.Factory.Alloc()

	b.Run("hash-assignment", func(b *testing.B) {
		d := truediff.New(sch)
		total, files := 0, 0
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				res, err := d.Diff(tree.Clone(fc.Before, alloc, tree.SHA256),
					tree.Clone(fc.After, alloc, tree.SHA256), alloc)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Script.EditCount()
				files++
			}
		}
		b.ReportMetric(float64(total)/float64(files), "edits/file")
	})
	b.Run("gumtree-matching", func(b *testing.B) {
		d := truediff.New(sch)
		total, files := 0, 0
		for i := 0; i < b.N; i++ {
			for _, fc := range changes {
				pairs := gumtree.MatchTyped(fc.Before, fc.After, gumtree.DefaultOptions())
				matches := make([]truediff.MatchPair, len(pairs))
				for j, p := range pairs {
					matches[j] = truediff.MatchPair{Src: p.Src, Dst: p.Dst}
				}
				res, err := d.DiffWithMatching(fc.Before, fc.After, matches, alloc)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Script.EditCount()
				files++
			}
		}
		b.ReportMetric(float64(total)/float64(files), "edits/file")
	})
}
