// Package repro is a from-scratch Go reproduction of "Concise, Type-Safe,
// and Efficient Structural Diffing" (Erdweg, Szabó, Pacak; PLDI 2021).
//
// The library lives under internal/: truechange (the linearly typed edit
// script language, §3), truediff (the diffing algorithm, §4), mtree (the
// standard semantics, §3.2), the gumtree/hdiff/lineardiff baselines, a
// Python-subset parser (pylang), a synthetic commit corpus (corpus), an
// incremental Datalog engine with the IncA driver (datalog, inca), and the
// evaluation harness (evaluation). See README.md for the tour, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every figure.
package repro
