// Jsondiff: structural patches beyond ASTs. The paper's introduction lists
// databases among the use cases of structural diffing (following Chawathe
// et al., who studied change detection in hierarchically structured
// records). This example diffs two versions of a JSON configuration
// document: the truechange patch mentions only the changed members, stays
// type-safe against the JSON schema, and can be shipped and applied
// elsewhere via its JSON wire format.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"repro/structdiff"
	"repro/structdiff/langs/jsonlang"
)

const before = `{
  "service": "checkout",
  "replicas": 3,
  "image": "registry/checkout:1.4.2",
  "resources": {"cpu": 2, "memory": "4Gi"},
  "env": [
    {"name": "LOG_LEVEL", "value": "info"},
    {"name": "TIMEOUT_MS", "value": "2500"}
  ],
  "probes": {"liveness": "/healthz", "readiness": "/ready"}
}`

const after = `{
  "service": "checkout",
  "replicas": 6,
  "image": "registry/checkout:1.5.0",
  "resources": {"cpu": 2, "memory": "8Gi"},
  "env": [
    {"name": "TIMEOUT_MS", "value": "2500"},
    {"name": "LOG_LEVEL", "value": "debug"},
    {"name": "RETRY_LIMIT", "value": "4"}
  ],
  "probes": {"liveness": "/healthz", "readiness": "/ready"}
}`

func main() {
	codec := jsonlang.NewCodec()
	src, err := codec.Parse(before)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := codec.Parse(after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("documents: %d and %d nodes\n\n", src.Size(), dst.Size())

	res, err := structdiff.Diff(src, dst,
		structdiff.WithSchema(codec.Schema()), structdiff.WithAllocator(codec.Alloc()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edit script:")
	fmt.Println(res.Script)
	fmt.Println("breakdown:", structdiff.ComputeStats(res.Script))

	// Type-check and apply — the patch is a valid transformation of the
	// typed JSON document.
	if err := structdiff.WellTyped(codec.Schema(), res.Script); err != nil {
		log.Fatal(err)
	}
	doc, err := structdiff.MTreeFromTree(codec.Schema(), src)
	if err != nil {
		log.Fatal(err)
	}
	if err := doc.Patch(res.Script); err != nil {
		log.Fatal(err)
	}
	if !doc.EqualTree(dst) {
		log.Fatal("patch verification failed")
	}
	fmt.Println("\npatched document equals the target ✓")

	// The patch travels as JSON, proportional to the change — not the
	// document.
	wire, err := json.Marshal(res.Script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire format: %d bytes for a %d-node document:\n%s\n",
		len(wire), src.Size(), wire)
	var back structdiff.Script
	if err := json.Unmarshal(wire, &back); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-tripped script: %d edits ✓\n", back.Len())
}
