// Editlang: use the truechange edit script language directly, without the
// diffing algorithm — the walkthrough of paper §2 and §3.1/§3.2. Three
// hand-written edit scripts build and evolve a tree from scratch, each
// validated by the linear type system before the standard semantics
// executes it. A fourth, deliberately ill-typed script shows what the type
// system rejects: the classic subtree swap via move operations.
package main

import (
	"fmt"
	"log"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

func main() {
	sch := exp.Schema()
	mt := structdiff.NewMTree(sch)
	fmt.Println("start:", mt)

	// ∆1 builds Add3(Var1("a"), Var2("b")) from the empty tree. It must be
	// a well-typed *initializing* script (Definition 3.2): it may fill the
	// pre-defined root's empty slot.
	d1 := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Load{Node: ref(exp.Var, 1), Lits: lits("name", "a")},
		structdiff.Load{Node: ref(exp.Var, 2), Lits: lits("name", "b")},
		structdiff.Load{Node: ref(exp.Add, 3), Kids: []structdiff.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		structdiff.Attach{Node: ref(exp.Add, 3), Link: structdiff.RootLink, Parent: structdiff.RootRef},
	}}
	if err := structdiff.WellTypedInit(sch, d1); err != nil {
		log.Fatal("∆1: ", err)
	}
	must(mt.Patch(d1))
	fmt.Println("after ∆1:", mt)

	// ∆2 updates a literal in place (Definition 3.1 applies from here on).
	d2 := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Update{Node: ref(exp.Var, 2), Old: lits("name", "b"), New: lits("name", "c")},
	}}
	checkAndPatch(sch, mt, d2, "∆2")

	// ∆3 swaps the constructor: unload Add3, reusing its children for a
	// fresh Mul4. The unload releases Var1 and Var2 as detached roots,
	// which the load consumes — linearity in action.
	d3 := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Detach{Node: ref(exp.Add, 3), Link: structdiff.RootLink, Parent: structdiff.RootRef},
		structdiff.Unload{Node: ref(exp.Add, 3), Kids: []structdiff.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		structdiff.Load{Node: ref(exp.Mul, 4), Kids: []structdiff.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		structdiff.Attach{Node: ref(exp.Mul, 4), Link: structdiff.RootLink, Parent: structdiff.RootRef},
	}}
	checkAndPatch(sch, mt, d3, "∆3")

	// ∆4 swaps the two variables with paired detach/attach edits. Watch
	// the intermediate states: each detach creates a root and an empty
	// slot, each attach consumes one of each.
	d4 := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Detach{Node: ref(exp.Var, 1), Link: "e1", Parent: ref(exp.Mul, 4)},
		structdiff.Detach{Node: ref(exp.Var, 2), Link: "e2", Parent: ref(exp.Mul, 4)},
		structdiff.Attach{Node: ref(exp.Var, 2), Link: "e1", Parent: ref(exp.Mul, 4)},
		structdiff.Attach{Node: ref(exp.Var, 1), Link: "e2", Parent: ref(exp.Mul, 4)},
	}}
	fmt.Println("\ntracing ∆4 through the type system:")
	st := structdiff.ClosedState()
	for _, e := range d4.Edits {
		if err := structdiff.CheckEdit(sch, e, st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s  state %s\n", e, st)
	}
	checkAndPatch(sch, mt, d4, "∆4")

	// An ill-typed script: swapping via moves attaches to an occupied
	// slot. The paper's §2 explains why this breaks typed representations.
	bad := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Detach{Node: ref(exp.Var, 2), Link: "e1", Parent: ref(exp.Mul, 4)},
		structdiff.Attach{Node: ref(exp.Var, 2), Link: "e2", Parent: ref(exp.Mul, 4)}, // slot e2 still occupied!
	}}
	err := structdiff.WellTyped(sch, bad)
	fmt.Println("\nattempting a move-style swap:")
	fmt.Println("  rejected by the type system:", err)
}

func ref(tag structdiff.Tag, u structdiff.URI) structdiff.NodeRef {
	return structdiff.NodeRef{Tag: tag, URI: u}
}

func lits(link structdiff.Link, v string) []structdiff.LitArg {
	return []structdiff.LitArg{{Link: link, Value: v}}
}

func checkAndPatch(sch *structdiff.Schema, mt *structdiff.MTree, d *structdiff.Script, name string) {
	if err := structdiff.WellTyped(sch, d); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if err := mt.Comply(d); err != nil {
		log.Fatalf("%s compliance: %v", name, err)
	}
	must(mt.Patch(d))
	fmt.Printf("after %s: %s\n", name, mt)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
