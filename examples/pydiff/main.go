// Pydiff: parse two versions of a Python module, diff them with truediff,
// and compare the patch against the gumtree and hdiff baselines — the
// scenario of the paper's evaluation (§6), where real-world Python files
// from consecutive commits are diffed on the fly.
//
// The two versions are embedded below and model a realistic commit: a
// renamed helper, a changed hyper-parameter, a new early-return guard, and
// a method moved within the class.
package main

import (
	"fmt"
	"log"

	"repro/structdiff"
	"repro/structdiff/baselines/gumtree"
	"repro/structdiff/baselines/hdiff"
	"repro/structdiff/langs/pylang"
)

const before = `import backend
from engine.base import Layer

DECAY = 0.01

class Dense(Layer):
    def __init__(self, units, activation=None):
        self.units = units
        self.activation = activation
        self.built = False

    def build(self, input_shape):
        self.kernel = self.add_weight("kernel", input_shape[1:])
        self.bias = self.add_weight("bias", (self.units,))
        self.built = True

    def call(self, inputs):
        outputs = backend.dot(inputs, self.kernel) + self.bias
        if self.activation is not None:
            outputs = self.activation(outputs)
        return outputs

def l2_penalty(weights):
    total = 0
    for w in weights:
        total += backend.sum(w * w)
    return DECAY * total
`

const after = `import backend
from engine.base import Layer

DECAY = 0.005

class Dense(Layer):
    def __init__(self, units, activation=None):
        self.units = units
        self.activation = activation
        self.built = False

    def call(self, inputs):
        outputs = backend.dot(inputs, self.kernel) + self.bias
        if self.activation is not None:
            outputs = self.activation(outputs)
        return outputs

    def build(self, input_shape):
        if self.built:
            return
        self.kernel = self.add_weight("kernel", input_shape[1:])
        self.bias = self.add_weight("bias", (self.units,))
        self.built = True

def weight_decay(weights):
    total = 0
    for w in weights:
        total += backend.sum(w * w)
    return DECAY * total
`

func main() {
	f := pylang.NewFactory()
	src, err := pylang.Parse(before, f)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := pylang.Parse(after, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: %d nodes before, %d nodes after\n\n", src.Size(), dst.Size())

	res, err := structdiff.Diff(src, dst,
		structdiff.WithSchema(f.Schema()), structdiff.WithAllocator(f.Alloc()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("truediff edit script:")
	fmt.Println(res.Script)

	// Verify: well-typed and correct.
	if err := structdiff.WellTyped(f.Schema(), res.Script); err != nil {
		log.Fatal(err)
	}
	mt, err := structdiff.MTreeFromTree(f.Schema(), src)
	if err != nil {
		log.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		log.Fatal(err)
	}
	if !mt.EqualTree(dst) {
		log.Fatal("patch verification failed")
	}
	fmt.Println("verified: well-typed, patches source into target ✓")

	// Compare patch sizes with the baselines on the same trees.
	gScript, _ := gumtree.Diff(gumtree.FromTree(src), gumtree.FromTree(dst), gumtree.DefaultOptions())
	hPatch := hdiff.Diff(src, dst, hdiff.DefaultOptions())
	fmt.Printf("\npatch sizes: truediff %d compound edits | gumtree %d actions | hdiff %d constructors\n",
		res.Script.EditCount(), gScript.Len(), hPatch.Size())
	fmt.Println("\nnote how the moved build method travels as detach+attach pairs,")
	fmt.Println("while unchanged subtrees (the call method, the loop body) are never mentioned.")
}
