// Incremental: drive an incremental program analysis with truediff edit
// scripts, reproducing the IncA pipeline of paper §6. A Datalog database
// derives properties of a Python module (transitive containment and the
// returns of every function); after each simulated code change we reparse,
// diff with truediff, and feed the concise edit script into the database —
// instead of reanalyzing the whole file.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/structdiff"
	"repro/structdiff/analysis"
	"repro/structdiff/langs/pylang"
)

// versions simulates an editing session on one module.
var versions = []string{
	`def scale(x, factor):
    return x * factor

def total(xs):
    acc = 0
    for x in xs:
        acc += scale(x, 2)
    return acc
`,
	// Change the scaling factor and add a guard with an early return.
	`def scale(x, factor):
    return x * factor

def total(xs):
    if xs == None:
        return 0
    acc = 0
    for x in xs:
        acc += scale(x, 3)
    return acc
`,
	// Extract the loop into a helper function.
	`def scale(x, factor):
    return x * factor

def accumulate(xs):
    acc = 0
    for x in xs:
        acc += scale(x, 3)
    return acc

def total(xs):
    if xs == None:
        return 0
    return accumulate(xs)
`,
}

func main() {
	f := pylang.NewFactory()
	differ := structdiff.NewDiffer(f.Schema())

	driver, err := analysis.NewDriver(f.Schema(), analysis.StandardRules(), analysis.NewOneToOne())
	if err != nil {
		log.Fatal(err)
	}

	cur, err := pylang.Parse(versions[0], f)
	if err != nil {
		log.Fatal(err)
	}
	if err := driver.InitTree(cur); err != nil {
		log.Fatal(err)
	}
	report(driver, 0)

	for i, src := range versions[1:] {
		next, err := pylang.Parse(src, f)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := differ.Diff(cur, next, f.Alloc())
		if err != nil {
			log.Fatal(err)
		}
		diffTime := time.Since(start)

		start = time.Now()
		if err := driver.ProcessScript(res.Script); err != nil {
			log.Fatal(err)
		}
		updateTime := time.Since(start)

		fmt.Printf("\n--- change %d: %d compound edits, diff %s, incremental update %s ---\n",
			i+1, res.Script.EditCount(), diffTime, updateTime)
		report(driver, i+1)
		cur = res.Patched
	}

	fmt.Println("\nThe analysis stayed consistent across edits without ever")
	fmt.Println("reanalyzing the full tree: the edit scripts only mention changed nodes.")
}

// report prints what the analysis currently derives.
func report(d *analysis.Driver, version int) {
	funcs := d.Engine.Query(analysis.PredNode, analysis.Var("F"), "FuncDef")
	fmt.Printf("version %d: %d functions analyzed, %d inFunc facts\n",
		version, len(funcs), d.Engine.Count("inFunc"))
	for _, fn := range funcs {
		returns := d.Engine.Query("funcReturn", fn[0], analysis.Var("R"))
		// The function name is a literal fact on the FuncDef node.
		names := d.Engine.Query(analysis.PredLit, fn[0], "name", analysis.Var("V"))
		name := "?"
		if len(names) == 1 {
			name = fmt.Sprint(names[0][2])
		}
		fmt.Printf("  def %-12s %d return statement(s)\n", name+":", len(returns))
	}
}
