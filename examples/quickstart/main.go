// Quickstart: diff two expression trees through the structdiff facade,
// inspect the truechange edit script, type-check it, and apply it via the
// standard semantics. This walks through the paper's running example from
// §1/§2:
//
//	diff( Add(Sub(a,b), Mul(c,d)), Add(d, Mul(c, Sub(a,b))) )
//
// whose minimal patch is two detaches followed by two attaches.
package main

import (
	"fmt"
	"log"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

func main() {
	// 1. Build the source and target trees over the expression schema.
	b := exp.NewBuilder()
	source := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	target := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"),
			b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))

	fmt.Println("source:", source)
	fmt.Println("target:", target)

	// 2. Diff: truediff yields a concise, type-safe truechange script.
	res, err := structdiff.Diff(source, target,
		structdiff.WithSchema(b.Schema()),
		structdiff.WithAllocator(b.Alloc()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nedit script:")
	fmt.Println(res.Script)
	fmt.Printf("raw edits: %d, compound edit count: %d\n",
		res.Script.Len(), res.Script.EditCount())

	// 3. Type-check the script against the linear type system (Fig. 3):
	// every intermediate tree is well-typed, no roots or slots leak.
	if err := structdiff.WellTyped(b.Schema(), res.Script); err != nil {
		log.Fatal("script is ill-typed: ", err)
	}
	fmt.Println("\nlinear type check: ok — all intermediate trees are well-typed")

	// 4. Apply the script with the standard semantics (Fig. 2): a mutable
	// tree with an index of all nodes, constant time per edit.
	mt, err := structdiff.MTreeFromTree(b.Schema(), source)
	if err != nil {
		log.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npatched tree:", mt)
	if !mt.EqualTree(target) {
		log.Fatal("patched tree does not equal the target")
	}
	fmt.Println("patched tree equals the target ✓")

	// 5. The returned patched tree reuses source subtrees (same URIs) and
	// can drive the next diff in an incremental pipeline. The one-call
	// structdiff.Patch is the immutable-tree equivalent of step 4.
	fmt.Println("\npatched (immutable, URIs preserved):", res.Patched)
	patched, err := structdiff.Patch(source, res.Script, structdiff.WithSchema(b.Schema()))
	if err != nil {
		log.Fatal(err)
	}
	if !structdiff.TreesEqual(patched, res.Patched) {
		log.Fatal("structdiff.Patch disagrees with the differ's patched tree")
	}
}
