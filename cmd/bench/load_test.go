package main

import (
	"testing"

	"repro/internal/telemetry"
)

// TestLoadTraceEndToEnd runs the self-contained load test with tracing on
// and verifies that requests produce complete traces: one trace ID
// spanning the client RPC, the server request, the coalescing queue, the
// engine, and the four truediff phases.
func TestLoadTraceEndToEnd(t *testing.T) {
	rec := telemetry.NewSpanRecorder()
	code := runLoad(loadConfig{
		clients:  2,
		requests: 6,
		workers:  2,
		seed:     3,
		trace:    true,
		rec:      rec,
	})
	if code != 0 {
		t.Fatalf("runLoad exited %d", code)
	}

	sum := summarizeSpans(rec.Spans())
	if sum.traces == 0 {
		t.Fatal("no traces recorded")
	}
	if sum.complete == 0 {
		t.Fatalf("no complete traces among %d: counts %v", sum.traces, sum.counts)
	}
	// Every request that was neither shed nor retried yields exactly the
	// eight-span chain; at minimum the chain's links must all be present.
	for _, name := range loadSpanNames {
		if sum.counts[name] == 0 {
			t.Errorf("no %s spans recorded", name)
		}
	}
}

// TestLoadChaosGoodput runs the self-contained load test through the
// chaos proxy: with retries armed, a 20% fault rate must not produce
// hard failures (exit 1), only retried or shed requests.
func TestLoadChaosGoodput(t *testing.T) {
	code := runLoad(loadConfig{
		clients:   2,
		requests:  20,
		workers:   2,
		seed:      3,
		chaos:     true,
		chaosRate: 0.2,
		chaosSeed: 5,
	})
	if code != 0 {
		t.Fatalf("runLoad with chaos exited %d, want 0", code)
	}
}
