package main

import (
	"path/filepath"
	"testing"

	"repro/internal/perfobs"
)

// writeReport writes a minimal single-scenario report with the given
// median wall time.
func writeReport(t *testing.T, path string, median float64) {
	t.Helper()
	r := &perfobs.Report{
		SchemaVersion: perfobs.SchemaVersion,
		Scenarios: []perfobs.ScenarioResult{{
			Name:   "truediff/small/light",
			WallNS: perfobs.Sample{N: 5, Median: median, IQR: median / 100},
		}},
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

// TestRunCompareFlagOrder pins that -tolerance and -allow-removed work
// both before and after the two report paths: the flag package stops at
// the first positional argument, and runCompare re-parses the rest.
func TestRunCompareFlagOrder(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeReport(t, oldP, 100e6)
	writeReport(t, newP, 150e6) // 1.5x slowdown, far beyond the 1% IQR

	if got := runCompare([]string{oldP, newP}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 1 {
		t.Errorf("1.5x slowdown at default tolerance: exit %d, want 1", got)
	}
	// Trailing flag widens the gate to 60% and the slowdown passes.
	if got := runCompare([]string{oldP, newP, "-tolerance", "0.6"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 0 {
		t.Errorf("trailing -tolerance ignored: exit %d, want 0", got)
	}
	if got := runCompare([]string{oldP, newP, "-tolerance=0.6"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 0 {
		t.Errorf("trailing -tolerance=0.6 ignored: exit %d, want 0", got)
	}

	// Removal: drop the scenario from the new report.
	emptyP := filepath.Join(dir, "empty.json")
	empty := &perfobs.Report{SchemaVersion: perfobs.SchemaVersion}
	if err := empty.WriteFile(emptyP); err != nil {
		t.Fatal(err)
	}
	if got := runCompare([]string{oldP, emptyP}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 1 {
		t.Errorf("removed scenario: exit %d, want 1", got)
	}
	if got := runCompare([]string{oldP, emptyP, "-allow-removed"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 0 {
		t.Errorf("trailing -allow-removed ignored: exit %d, want 0", got)
	}

	if got := runCompare([]string{oldP}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 2 {
		t.Errorf("one path: exit %d, want 2", got)
	}
	if got := runCompare([]string{oldP, newP, "-bogus"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 2 {
		t.Errorf("unknown flag: exit %d, want 2", got)
	}
}

// TestRunCompareQualityGate pins the conciseness gate's CLI surface: edit
// growth beyond the quality tolerance fails the comparison even with
// identical wall times, and a trailing -quality-tolerance re-tunes or
// disables it.
func TestRunCompareQualityGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, edits int) string {
		t.Helper()
		p := filepath.Join(dir, name)
		r := &perfobs.Report{
			SchemaVersion: perfobs.SchemaVersion,
			Scenarios: []perfobs.ScenarioResult{{
				Name:       "truediff/tiny/light",
				WallNS:     perfobs.Sample{N: 5, Median: 100e6, IQR: 1e6},
				EditsTotal: edits,
			}},
		}
		if err := r.WriteFile(p); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		return p
	}
	oldP := write("old.json", 100)
	newP := write("new.json", 110) // scripts grew 10%, wall time unchanged

	if got := runCompare([]string{oldP, newP}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 1 {
		t.Errorf("10%% edit growth at default quality tolerance: exit %d, want 1", got)
	}
	if got := runCompare([]string{oldP, newP, "-quality-tolerance", "0.2"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 0 {
		t.Errorf("trailing -quality-tolerance ignored: exit %d, want 0", got)
	}
	if got := runCompare([]string{oldP, newP, "-quality-tolerance=-1"}, perfobs.DefaultTolerance, perfobs.DefaultQualityTolerance, false); got != 0 {
		t.Errorf("disabled conciseness gate still fails: exit %d, want 0", got)
	}
}
