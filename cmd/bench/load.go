package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/derrors"
	"repro/internal/diffserve"
	"repro/internal/pylang"
	"repro/internal/telemetry"
)

// loadConfig parameterizes the diffd load test (bench -load).
type loadConfig struct {
	// addr is a running daemon's base URL ("http://host:port"); empty
	// starts an in-process server and drives it over loopback, so the
	// mode is self-contained.
	addr     string
	clients  int
	requests int
	workers  int
	seed     int64
}

// runLoad drives a diffd with concurrent clients replaying a generated
// commit history (every client its own connection and tenant) and reports
// client-observed latency quantiles, throughput, and shed counts. Exit
// status 0 on success, 1 when any request failed for a reason other than
// admission control.
func runLoad(cfg loadConfig) int {
	hist := corpus.Generate(corpus.Options{
		Seed:              cfg.seed,
		Files:             8,
		Commits:           40,
		MaxFilesPerCommit: 3,
		MinNodes:          200,
		MaxNodes:          1200,
		MaxEditsPerFile:   4,
	})
	changes := hist.Changes()
	if len(changes) == 0 {
		fmt.Fprintln(os.Stderr, "bench: corpus produced no changes")
		return 2
	}

	base := cfg.addr
	if base == "" {
		srv, err := diffserve.NewServer(diffserve.Config{
			Langs:   []string{"pylang"},
			Workers: cfg.workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 2
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 2
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
			_ = hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "bench: started in-process diffd at %s\n", base)
	}

	var (
		latency  telemetry.Histogram
		sheds    atomic.Uint64
		failures atomic.Uint64
		next     atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := diffserve.NewClient(base, "pylang", pylang.Schema(),
				diffserve.WithTenant(fmt.Sprintf("load-%d", c)))
			defer client.Close()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					return
				}
				ch := changes[int(i)%len(changes)]
				t0 := time.Now()
				_, err := client.Diff(context.Background(), ch.Before, ch.After, nil)
				latency.Record(time.Since(t0).Nanoseconds())
				switch {
				case err == nil:
				case errors.Is(err, derrors.ErrServiceUnavailable):
					sheds.Add(1)
					if ra := diffserve.RetryAfter(err); ra > 0 {
						time.Sleep(min(ra, 250*time.Millisecond))
					}
				default:
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "bench: request %d: %v\n", i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	s := latency.Snapshot()
	fmt.Printf("load test: %d requests over %d clients against %s\n", cfg.requests, cfg.clients, base)
	fmt.Printf("  wall %v, %.0f req/s\n", wall.Round(time.Millisecond), float64(cfg.requests)/wall.Seconds())
	fmt.Printf("  latency mean %v, p50 %v, p95 %v, max-bucket %v\n",
		time.Duration(s.Mean()).Round(time.Microsecond),
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.95)).Round(time.Microsecond),
		time.Duration(s.Quantile(1.0)).Round(time.Microsecond))
	fmt.Printf("  %d shed by admission control, %d failed\n", sheds.Load(), failures.Load())
	if failures.Load() > 0 {
		return 1
	}
	return 0
}
