package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/derrors"
	"repro/internal/diffserve"
	"repro/internal/pylang"
	"repro/internal/telemetry"
)

// loadConfig parameterizes the diffd load test (bench -load).
type loadConfig struct {
	// addr is a running daemon's base URL ("http://host:port"); empty
	// starts an in-process server and drives it over loopback, so the
	// mode is self-contained.
	addr     string
	clients  int
	requests int
	workers  int
	seed     int64
	// trace records every span client-side and (for the in-process
	// server) server-side into one recorder and prints a per-trace
	// latency decomposition after the run.
	trace bool
	// rec overrides the recorder trace uses (tests inspect it; nil with
	// trace set allocates one).
	rec *telemetry.SpanRecorder
	// chaos interposes a seeded fault proxy (internal/chaos) between the
	// clients and the daemon and arms the clients with retries; the run
	// then reports goodput (successful requests per second) under fault
	// injection. chaosRate is the total fault rate (default 0.1), split
	// across resets, error answers, and truncated bodies.
	chaos     bool
	chaosRate float64
	chaosSeed int64
}

// runLoad drives a diffd with concurrent clients replaying a generated
// commit history (every client its own connection and tenant) and reports
// client-observed latency quantiles, throughput, and shed counts. Exit
// status 0 on success, 1 when any request failed for a reason other than
// admission control.
func runLoad(cfg loadConfig) int {
	hist := corpus.Generate(corpus.Options{
		Seed:              cfg.seed,
		Files:             8,
		Commits:           40,
		MaxFilesPerCommit: 3,
		MinNodes:          200,
		MaxNodes:          1200,
		MaxEditsPerFile:   4,
	})
	changes := hist.Changes()
	if len(changes) == 0 {
		fmt.Fprintln(os.Stderr, "bench: corpus produced no changes")
		return 2
	}

	rec := cfg.rec
	if cfg.trace && rec == nil {
		rec = telemetry.NewSpanRecorder()
	}
	scfg := diffserve.Config{
		Langs:   []string{"pylang"},
		Workers: cfg.workers,
	}
	if rec != nil {
		scfg.Spans = rec
	}

	base := cfg.addr
	if base == "" {
		srv, err := diffserve.NewServer(scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 2
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 2
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
			_ = hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "bench: started in-process diffd at %s\n", base)
	}

	var proxy *chaos.Proxy
	if cfg.chaos {
		rate := cfg.chaosRate
		if rate <= 0 {
			rate = 0.1
		}
		var err error
		proxy, err = chaos.New(chaos.Config{
			Target:       base,
			Seed:         cfg.chaosSeed,
			ResetRate:    0.4 * rate,
			ErrorRate:    0.3 * rate,
			TruncateRate: 0.3 * rate,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 2
		}
		defer proxy.Close()
		fmt.Fprintf(os.Stderr, "bench: chaos proxy %s -> %s (total fault rate %.0f%%)\n",
			proxy.URL(), base, 100*rate)
		base = proxy.URL()
	}

	var (
		latency  telemetry.Histogram
		sheds    atomic.Uint64
		failures atomic.Uint64
		retries  atomic.Uint64
		next     atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			copts := []diffserve.ClientOption{diffserve.WithTenant(fmt.Sprintf("load-%d", c))}
			if rec != nil {
				copts = append(copts, diffserve.WithSpans(rec))
			}
			if cfg.chaos {
				copts = append(copts, diffserve.WithRetry(diffserve.RetryPolicy{
					MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond,
					MaxBackoff: 100 * time.Millisecond, PerAttemptTimeout: 10 * time.Second,
					Seed: cfg.chaosSeed + int64(c),
				}))
			}
			client := diffserve.NewClient(base, "pylang", pylang.Schema(), copts...)
			defer func() {
				retries.Add(client.ClientSnapshot().Retries)
				client.Close()
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					return
				}
				ch := changes[int(i)%len(changes)]
				t0 := time.Now()
				_, err := client.Diff(context.Background(), ch.Before, ch.After, nil)
				latency.Record(time.Since(t0).Nanoseconds())
				switch {
				case err == nil:
				case errors.Is(err, derrors.ErrServiceUnavailable):
					sheds.Add(1)
					if ra := diffserve.RetryAfter(err); ra > 0 {
						time.Sleep(min(ra, 250*time.Millisecond))
					}
				default:
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "bench: request %d: %v\n", i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	s := latency.Snapshot()
	fmt.Printf("load test: %d requests over %d clients against %s\n", cfg.requests, cfg.clients, base)
	fmt.Printf("  wall %v, %.0f req/s\n", wall.Round(time.Millisecond), float64(cfg.requests)/wall.Seconds())
	fmt.Printf("  latency mean %v, p50 %v, p95 %v, max-bucket %v\n",
		time.Duration(s.Mean()).Round(time.Microsecond),
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.95)).Round(time.Microsecond),
		time.Duration(s.Quantile(1.0)).Round(time.Microsecond))
	fmt.Printf("  %d shed by admission control, %d failed\n", sheds.Load(), failures.Load())
	if proxy != nil {
		good := uint64(cfg.requests) - sheds.Load() - failures.Load()
		c := proxy.Counts()
		fmt.Printf("  goodput %.0f req/s (%d/%d succeeded) with %d client retries\n",
			float64(good)/wall.Seconds(), good, cfg.requests, retries.Load())
		fmt.Printf("  chaos injected: %d resets, %d error answers, %d truncations (%d forwarded clean)\n",
			c.Resets, c.Errors, c.Truncates, c.Forwarded)
	}
	if rec != nil {
		printTraceSummary(summarizeSpans(rec.Spans()))
	}
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// loadSpanNames is the span chain one traced in-process Diff produces:
// client RPC → server request → coalescing queue → engine → four phases.
var loadSpanNames = []string{
	"diffserve.client.diff", "diffserve.request", "diffserve.queue", "engine.diff",
	"truediff.prepare", "truediff.shares", "truediff.select", "truediff.emit",
}

// spanSummary aggregates a load test's recorded spans: trace counts and
// the summed duration per span name (the latency decomposition).
type spanSummary struct {
	traces   int                      // distinct trace IDs
	complete int                      // traces containing the full chain
	byName   map[string]time.Duration // summed span durations
	counts   map[string]int
}

func summarizeSpans(spans []telemetry.Span) spanSummary {
	s := spanSummary{byName: map[string]time.Duration{}, counts: map[string]int{}}
	names := map[telemetry.TraceID]map[string]bool{}
	for i := range spans {
		sp := &spans[i]
		s.byName[sp.Name] += sp.Stop.Sub(sp.Start)
		s.counts[sp.Name]++
		if names[sp.Trace] == nil {
			names[sp.Trace] = map[string]bool{}
		}
		names[sp.Trace][sp.Name] = true
	}
	s.traces = len(names)
	for _, seen := range names {
		full := true
		for _, n := range loadSpanNames {
			if !seen[n] {
				full = false
				break
			}
		}
		if full {
			s.complete++
		}
	}
	return s
}

func printTraceSummary(s spanSummary) {
	fmt.Printf("  traces: %d recorded, %d with the full client→server→queue→engine→phases chain\n",
		s.traces, s.complete)
	for _, n := range loadSpanNames {
		if c := s.counts[n]; c > 0 {
			fmt.Printf("    %-22s %5d spans, mean %v\n", n, c,
				(s.byName[n] / time.Duration(c)).Round(time.Microsecond))
		}
	}
}
