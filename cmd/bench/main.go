// Command bench runs the performance-observability matrix and maintains
// the BENCH_<n>.json trajectory at the repository root:
//
//	bench                            # run the full matrix, write BENCH_<n>.json
//	bench -smoke                     # reduced matrix (CI's bench-smoke job)
//	bench -list                      # print the scenario names and exit
//	bench -scenario 'engine/.*'      # run matching scenarios only
//	bench -reps 7 -warmup 2          # tune repetitions
//	bench -out report.json           # explicit output path (skips numbering)
//
// Comparing two reports turns bench into a regression gate:
//
//	bench -compare BENCH_0.json BENCH_1.json                  # 5% tolerance
//	bench -compare -tolerance 0.25 -allow-removed OLD NEW     # smoke vs full
//	bench -compare -quality-tolerance 0.05 OLD NEW            # looser conciseness gate
//
// The gate fails (exit 1) when any scenario's median wall time regressed
// beyond BOTH the tolerance and the scenario's noise band (the larger
// IQR), when a scenario's total compound edit count grew beyond the
// quality tolerance (the conciseness gate; -quality-tolerance -1 disables
// it), or when a scenario disappeared without -allow-removed.
//
// Profiling a run (see docs/OBSERVABILITY.md):
//
//	bench -cpuprofile cpu.pprof -scenario 'truediff/medium/light'
//	bench -exectrace trace.out -scenario 'engine/.*'
//	bench -memprofile mem.pprof
//
// Profile-taking runs enable pprof phase/pair/worker labels automatically,
// so `go tool pprof -tagfocus phase=emit cpu.pprof` decomposes samples by
// truediff phase.
//
// Load-testing the diff service (cmd/diffd) replays a generated commit
// history through concurrent HTTP clients and reports client-observed
// latency quantiles, throughput, and admission-control sheds:
//
//	bench -load                              # self-contained: in-process daemon
//	bench -load -load-addr http://host:8347  # against a running diffd
//	bench -load -load-clients 16 -load-requests 1000
//	bench -load -chaos -chaos-rate 0.1       # goodput under fault injection
//
// With -chaos a seeded fault proxy (internal/chaos) sits between the
// clients and the daemon, injecting connection resets, 5xx/429 answers,
// and truncated bodies at -chaos-rate; the clients retry with backoff and
// the report adds goodput (successful requests per second) plus injected
// fault counts.
//
// Exit status: 0 on success, 1 on a failed gate, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/perfobs"
	"repro/internal/profiling"
)

func main() {
	var (
		compare      = flag.Bool("compare", false, "compare two reports: bench -compare OLD.json NEW.json")
		tolerance    = flag.Float64("tolerance", perfobs.DefaultTolerance, "relative median slowdown the gate forgives (0.05 = 5%)")
		qualityTol   = flag.Float64("quality-tolerance", perfobs.DefaultQualityTolerance, "relative edit-count growth the conciseness gate forgives (negative disables)")
		allowRemoved = flag.Bool("allow-removed", false, "do not fail the gate on scenarios missing from the new report")
		list         = flag.Bool("list", false, "print scenario names and exit")
		smoke        = flag.Bool("smoke", false, "run the reduced smoke matrix (a strict subset of the full matrix)")
		scenario     = flag.String("scenario", "", "regexp filtering scenario names to run")
		reps         = flag.Int("reps", 0, "measured repetitions per scenario (default 5; smoke default 3)")
		warmup       = flag.Int("warmup", 0, "warmup repetitions per scenario (default 1)")
		out          = flag.String("out", "", "write the report to this path instead of the next BENCH_<n>.json")
		dir          = flag.String("dir", ".", "directory of the BENCH_<n>.json trajectory")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
		exectrace    = flag.String("exectrace", "", "write a runtime/trace execution trace of the run to this file")
		load         = flag.Bool("load", false, "load-test a diffd daemon instead of running the matrix")
		loadAddr     = flag.String("load-addr", "", "base URL of a running diffd (empty starts an in-process server)")
		loadClients  = flag.Int("load-clients", 8, "concurrent load-test clients")
		loadRequests = flag.Int("load-requests", 200, "total load-test requests")
		loadSeed     = flag.Int64("load-seed", 1, "corpus seed for the load test")
		loadTrace    = flag.Bool("load-trace", false, "record spans during the load test and print a per-trace latency decomposition")
		chaosOn      = flag.Bool("chaos", false, "with -load: inject faults through a seeded chaos proxy and report goodput")
		chaosRate    = flag.Float64("chaos-rate", 0.1, "with -chaos: total injected fault rate in [0,1]")
		chaosSeed    = flag.Int64("chaos-seed", 1, "with -chaos: fault schedule seed")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *qualityTol, *allowRemoved))
	}
	if *load {
		os.Exit(runLoad(loadConfig{
			addr:      *loadAddr,
			clients:   *loadClients,
			requests:  *loadRequests,
			seed:      *loadSeed,
			trace:     *loadTrace,
			chaos:     *chaosOn,
			chaosRate: *chaosRate,
			chaosSeed: *chaosSeed,
		}))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "bench: unexpected arguments (use -compare OLD NEW to compare reports)")
		os.Exit(2)
	}

	matrix := perfobs.FullMatrix()
	if *smoke {
		matrix = perfobs.SmokeMatrix()
		if *reps == 0 {
			*reps = 3
		}
	}
	if *scenario != "" {
		re, err := regexp.Compile(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -scenario: %v\n", err)
			os.Exit(2)
		}
		var kept []perfobs.Scenario
		for _, sc := range matrix {
			if re.MatchString(sc.Name()) {
				kept = append(kept, sc)
			}
		}
		matrix = kept
	}
	if *list {
		for _, sc := range matrix {
			fmt.Println(sc.Name())
		}
		return
	}
	if len(matrix) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no scenarios match")
		os.Exit(2)
	}

	prof := profiling.Config{CPUProfile: *cpuprofile, MemProfile: *memprofile, ExecTrace: *exectrace}
	stop := func() error { return nil }
	if prof.Enabled() {
		var err error
		stop, err = profiling.Start(prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
	}

	report, err := perfobs.Run(perfobs.RunConfig{
		Scenarios: matrix,
		Warmup:    *warmup,
		Reps:      *reps,
		Smoke:     *smoke,
		// Profile output is only useful when the measured code carries
		// labels and trace regions, so profiling opts into them.
		ProfileLabels: prof.Enabled(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if serr := stop(); serr != nil {
		fmt.Fprintln(os.Stderr, "bench:", serr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path, err = perfobs.NextBenchPath(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
	}
	if err := report.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	report.WriteSummary(os.Stdout)
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(report.Scenarios))
}

func runCompare(args []string, tolerance, qualityTol float64, allowRemoved bool) int {
	// The standard flag package stops parsing at the first positional
	// argument, so `bench -compare OLD NEW -tolerance 0.25` leaves the
	// trailing flags in args. Accept them here so flag position doesn't
	// matter.
	var paths []string
	for len(args) > 0 {
		if args[0] == "-" || args[0][0] != '-' {
			paths = append(paths, args[0])
			args = args[1:]
			continue
		}
		fs := flag.NewFlagSet("bench -compare", flag.ContinueOnError)
		fs.Float64Var(&tolerance, "tolerance", tolerance, "")
		fs.Float64Var(&qualityTol, "quality-tolerance", qualityTol, "")
		fs.BoolVar(&allowRemoved, "allow-removed", allowRemoved, "")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		args = fs.Args()
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two report paths: bench -compare OLD.json NEW.json")
		return 2
	}
	args = paths
	oldR, err := perfobs.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	newR, err := perfobs.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	opts := perfobs.CompareOptions{Tolerance: tolerance, QualityTolerance: qualityTol, AllowRemoved: allowRemoved}
	cmp := perfobs.Compare(oldR, newR, opts)
	cmp.WriteText(os.Stdout, opts)
	if cmp.Failed() {
		return 1
	}
	return 0
}
