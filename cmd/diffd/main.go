// Command diffd serves structural diffing as a network service: an
// HTTP/JSON daemon around the batch engine, one engine per served
// language, with request coalescing, per-tenant admission control, queue
// backpressure (429 + Retry-After when saturated), and graceful drain on
// SIGINT/SIGTERM.
//
//	diffd                              # serve every language on :8347
//	diffd -addr :9000 -langs exp       # one language, custom port
//	diffd -workers 8 -diff-timeout 2s  # engine tuning
//	diffd -trace diffs.jsonl -trace-max-bytes 64000000 -slow 50ms
//	diffd -log-format json -spans      # structured logs + span export
//
// Endpoints (wire schema and a curl session in docs/SERVICE.md):
//
//	POST /v1/diff      one pair (S-exprs or refs), versioned JSON
//	POST /v1/batch     many pairs, one engine batch
//	GET  /v1/snapshot  per-language engine counters
//	GET  /metrics      Prometheus text exposition (service + engines)
//	GET  /debug/diffz  flight recorder: recent + slowest diffs (JSON/HTML)
//	GET  /healthz      liveness: 200 while the process serves HTTP
//	GET  /readyz       readiness: 503 when draining, lame-duck, or saturated
//
// On SIGTERM the daemon first goes lame-duck for -drain-grace: /readyz
// answers 503 (load balancers stop routing here) while requests still
// serve. Then it drains: in-flight diffs complete, queued and new
// requests are answered with a clean 503, and the process exits 0. The
// drain is bounded by -drain-timeout; an expired bound still closes the
// engines before exit.
//
// Exit status: 0 after a clean drain, 1 on a serve error, 2 on bad usage.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/diffserve"
	"repro/internal/telemetry"
)

// jsonlSpans exports completed spans as one JSON object per line. Engine
// workers end spans concurrently, so the encoder is serialized.
type jsonlSpans struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (s *jsonlSpans) SpanEnd(sp *telemetry.Span) {
	s.mu.Lock()
	_ = s.enc.Encode(sp)
	s.mu.Unlock()
}

func main() {
	var (
		addr          = flag.String("addr", ":8347", "listen address")
		langs         = flag.String("langs", "", "comma-separated languages to serve (default: all registered)")
		workers       = flag.Int("workers", 0, "worker goroutines per language engine (0 = GOMAXPROCS)")
		diffTimeout   = flag.Duration("diff-timeout", 5*time.Second, "per-diff deadline (0 disables)")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "how long to hold a request for coalescing companions")
		batchMax      = flag.Int("batch-max", 64, "max requests coalesced into one engine batch")
		maxQueue      = flag.Int("max-queue", 256, "per-language admission queue bound (saturation threshold)")
		tenantLimit   = flag.Int("tenant-limit", 32, "per-tenant concurrent request cap (X-Diffd-Tenant header; -1 disables)")
		slow          = flag.Duration("slow", 0, "log diffs at or above this wall time (0 disables)")
		tracePath     = flag.String("trace", "", "append one JSONL trace record per diff to this file")
		traceMaxBytes = flag.Int64("trace-max-bytes", 0, "rotate the -trace (and -spans) file past this size, keeping one .1 predecessor (0 disables)")
		spansPath     = flag.String("spans", "", "append one JSON span per line to this file (enables distributed tracing)")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		sloWindow     = flag.Duration("slo-window", 0, "rolling SLO window (0 = 1h default)")
		sloObjective  = flag.Duration("slo-objective", 0, "per-request latency objective for SLO attainment (0 = 250ms default)")
		drainGrace    = flag.Duration("drain-grace", 0, "lame-duck period after SIGTERM: /readyz answers 503 while requests still serve, before the drain begins")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM")
		listLangs     = flag.Bool("list-langs", false, "print the registered languages and exit")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "diffd: unexpected arguments")
		os.Exit(2)
	}
	if *listLangs {
		fmt.Println(strings.Join(diffserve.Languages(), "\n"))
		return
	}
	logf := log.New(os.Stderr, "diffd: ", log.LstdFlags).Printf

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "diffd: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	cfg := diffserve.Config{
		Workers:           *workers,
		DiffTimeout:       *diffTimeout,
		BatchWindow:       *batchWindow,
		BatchMax:          *batchMax,
		MaxQueue:          *maxQueue,
		TenantLimit:       *tenantLimit,
		SlowDiffThreshold: *slow,
		Logf:              logf,
		Logger:            logger,
		SLO: telemetry.SLOConfig{
			Window:           *sloWindow,
			LatencyObjective: *sloObjective,
		},
	}
	if *langs != "" {
		cfg.Langs = strings.Split(*langs, ",")
	}
	if *tracePath != "" {
		f, err := telemetry.OpenRotatingFile(*tracePath, *traceMaxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffd:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.Trace = telemetry.NewTraceWriter(f)
	}
	if *spansPath != "" {
		f, err := telemetry.OpenRotatingFile(*spansPath, *traceMaxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffd:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.Spans = &jsonlSpans{enc: json.NewEncoder(f)}
	}

	srv, err := diffserve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diffd:", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logf("serving %s on %s (wire schema %s)", strings.Join(orAll(cfg.Langs), ","), *addr, diffserve.WireVersion)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	if *drainGrace > 0 {
		// Lame-duck: unready on /readyz, still serving. Load balancers get
		// one health-check interval to route traffic away before any
		// request sees a drain 503.
		srv.Lameduck()
		logf("lame-duck for %v: /readyz now 503, still serving", *drainGrace)
		time.Sleep(*drainGrace)
	}
	logf("draining (bound %v): in-flight diffs complete, new requests get 503", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("shutdown: %v", err)
	}
	logf("drained cleanly")
}

func orAll(langs []string) []string {
	if len(langs) == 0 {
		return diffserve.Languages()
	}
	return langs
}
