// Command diffd serves structural diffing as a network service: an
// HTTP/JSON daemon around the batch engine, one engine per served
// language, with request coalescing, per-tenant admission control, queue
// backpressure (429 + Retry-After when saturated), and graceful drain on
// SIGINT/SIGTERM.
//
//	diffd                              # serve every language on :8347
//	diffd -addr :9000 -langs exp       # one language, custom port
//	diffd -workers 8 -diff-timeout 2s  # engine tuning
//	diffd -trace diffs.jsonl -slow 50ms
//
// Endpoints (wire schema and a curl session in docs/SERVICE.md):
//
//	POST /v1/diff      one pair (S-exprs or refs), versioned JSON
//	POST /v1/batch     many pairs, one engine batch
//	GET  /v1/snapshot  per-language engine counters
//	GET  /metrics      Prometheus text exposition (service + engines)
//	GET  /healthz      200 serving / 503 draining
//
// On SIGTERM the daemon drains: in-flight diffs complete, queued and new
// requests are answered with a clean 503, then the process exits 0. The
// drain is bounded by -drain-timeout; an expired bound still closes the
// engines before exit.
//
// Exit status: 0 after a clean drain, 1 on a serve error, 2 on bad usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/diffserve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		langs        = flag.String("langs", "", "comma-separated languages to serve (default: all registered)")
		workers      = flag.Int("workers", 0, "worker goroutines per language engine (0 = GOMAXPROCS)")
		diffTimeout  = flag.Duration("diff-timeout", 5*time.Second, "per-diff deadline (0 disables)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "how long to hold a request for coalescing companions")
		batchMax     = flag.Int("batch-max", 64, "max requests coalesced into one engine batch")
		maxQueue     = flag.Int("max-queue", 256, "per-language admission queue bound (saturation threshold)")
		tenantLimit  = flag.Int("tenant-limit", 32, "per-tenant concurrent request cap (X-Diffd-Tenant header; -1 disables)")
		slow         = flag.Duration("slow", 0, "log diffs at or above this wall time (0 disables)")
		tracePath    = flag.String("trace", "", "append one JSONL trace record per diff to this file")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM")
		listLangs    = flag.Bool("list-langs", false, "print the registered languages and exit")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "diffd: unexpected arguments")
		os.Exit(2)
	}
	if *listLangs {
		fmt.Println(strings.Join(diffserve.Languages(), "\n"))
		return
	}
	logf := log.New(os.Stderr, "diffd: ", log.LstdFlags).Printf

	cfg := diffserve.Config{
		Workers:           *workers,
		DiffTimeout:       *diffTimeout,
		BatchWindow:       *batchWindow,
		BatchMax:          *batchMax,
		MaxQueue:          *maxQueue,
		TenantLimit:       *tenantLimit,
		SlowDiffThreshold: *slow,
		Logf:              logf,
	}
	if *langs != "" {
		cfg.Langs = strings.Split(*langs, ",")
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffd:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.Trace = telemetry.NewTraceWriter(f)
	}

	srv, err := diffserve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diffd:", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logf("serving %s on %s (wire schema %s)", strings.Join(orAll(cfg.Langs), ","), *addr, diffserve.WireVersion)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	logf("draining (bound %v): in-flight diffs complete, new requests get 503", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("shutdown: %v", err)
	}
	logf("drained cleanly")
}

func orAll(langs []string) []string {
	if len(langs) == 0 {
		return diffserve.Languages()
	}
	return langs
}
