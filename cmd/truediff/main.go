// Command truediff diffs two Python source files (or JSON documents) and
// prints the truechange edit script, optionally verifying it against the
// linear type system and the standard semantics:
//
//	truediff old.py new.py             # print the edit script
//	truediff -check old.py new.py      # also type-check and verify patching
//	truediff -explain old.py new.py    # annotate each edit with its provenance
//	truediff -stats old.py new.py      # sizes, edit counts, timing
//	truediff -baselines old.py new.py  # compare against gumtree and hdiff
//	truediff -lang json a.json b.json  # diff JSON documents
//
// Three-way merge (see docs/MERGE.md): given an ancestor and two divergent
// versions, print one well-typed script carrying both sides' changes:
//
//	truediff -merge base.py ours.py theirs.py
//	truediff -merge -merge-policy ours base.py ours.py theirs.py
//
// Merge exit status: 0 merged cleanly, 2 conflicts reported (printed to
// stderr), 1 operational error.
//
// With -metrics-addr the diff runs through a batch engine whose telemetry
// (Prometheus /metrics, expvar, pprof) is served on the given address; the
// process then stays up until interrupted so the endpoint can be scraped:
//
//	truediff -stats -metrics-addr :9090 old.py new.py
//
// Profiling and benchmarking (see docs/OBSERVABILITY.md; the same four
// flags exist on cmd/evaluate and cmd/bench):
//
//	truediff -cpuprofile cpu.pprof old.py new.py   # pprof CPU profile
//	truediff -memprofile mem.pprof old.py new.py   # post-run heap profile
//	truediff -exectrace trace.out old.py new.py    # runtime/trace; phases
//	                                               # appear as truediff/* regions
//	truediff -bench-out run.json old.py new.py     # perfobs-schema timing report
//
// Profiling flags enable pprof phase labels automatically, so
// `go tool pprof -tagfocus phase=emit cpu.pprof` isolates one phase.
//
// Exit status: 0 on success (even for non-empty diffs), 1 on errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/perfobs"
	"repro/internal/profiling"
	"repro/structdiff"
	"repro/structdiff/baselines/gumtree"
	"repro/structdiff/baselines/hdiff"
	"repro/structdiff/langs/jsonlang"
	"repro/structdiff/langs/pylang"
)

// writeBenchReport records one CLI diff as a perfobs-schema report, so
// ad-hoc invocations can be tracked and compared with `bench -compare`
// (single-sample statistics: the medians are the run itself).
func writeBenchReport(path, lang string, nodes, edits int, elapsed time.Duration) error {
	wall := []float64{float64(elapsed.Nanoseconds())}
	rep := &perfobs.Report{
		SchemaVersion: perfobs.SchemaVersion,
		CreatedUnix:   time.Now().Unix(),
		Env:           perfobs.CaptureEnv(),
		Scenarios: []perfobs.ScenarioResult{{
			Name:        "cli/truediff/" + lang,
			System:      "truediff",
			Corpus:      "cli",
			Edits:       "cli",
			Pairs:       1,
			Nodes:       int64(nodes),
			Reps:        1,
			WallNS:      perfobs.Summarize(wall),
			NodesPerSec: perfobs.Summarize([]float64{float64(nodes) / elapsed.Seconds()}),
			EditsTotal:  edits,
		}},
	}
	return rep.WriteFile(path)
}

func main() {
	var (
		check       = flag.Bool("check", false, "type-check the script and verify patching")
		explain     = flag.Bool("explain", false, "annotate every edit with its provenance (equivalence class, selection outcome) and print script-quality metrics")
		stat        = flag.Bool("stats", false, "print sizes, edit counts, and timing")
		baselines   = flag.Bool("baselines", false, "also run gumtree and hdiff")
		quiet       = flag.Bool("quiet", false, "suppress the edit script itself")
		lang        = flag.String("lang", "python", "input language: python | json")
		metricsAddr = flag.String("metrics-addr", "", "run the diff through an engine and serve its /metrics, /debug/vars, and /debug/pprof on this address until interrupted")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (enables phase labels)")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
		exectrace   = flag.String("exectrace", "", "write a runtime/trace execution trace to this file (phases appear as truediff/* regions)")
		benchOut    = flag.String("bench-out", "", "write the diff's timing as a perfobs-schema JSON report to this file (comparable via bench -compare)")
		mergeMode   = flag.Bool("merge", false, "three-way merge: truediff -merge ANCESTOR OURS THEIRS")
		mergePolicy = flag.String("merge-policy", "fail", "conflict resolution for -merge: fail | ours | theirs")
	)
	flag.Parse()
	if *mergeMode {
		if flag.NArg() != 3 {
			fmt.Fprintln(os.Stderr, "usage: truediff -merge [-merge-policy fail|ours|theirs] [-stats] [-quiet] [-lang python|json] ANCESTOR OURS THEIRS")
			os.Exit(1)
		}
		err := runMerge(flag.Arg(0), flag.Arg(1), flag.Arg(2), *lang, *mergePolicy, *stat, *quiet)
		switch {
		case errors.Is(err, errMergeConflicts):
			os.Exit(2)
		case err != nil:
			fmt.Fprintln(os.Stderr, "truediff:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: truediff [-check] [-explain] [-stats] [-baselines] [-quiet] [-lang python|json] [-metrics-addr ADDR]\n"+
			"                [-cpuprofile FILE] [-memprofile FILE] [-exectrace FILE] [-bench-out FILE] OLD NEW\n"+
			"       truediff -merge [-merge-policy fail|ours|theirs] ANCESTOR OURS THEIRS")
		os.Exit(1)
	}
	prof := profiling.Config{CPUProfile: *cpuprofile, MemProfile: *memprofile, ExecTrace: *exectrace}
	stop := func() error { return nil }
	if prof.Enabled() {
		var err error
		stop, err = profiling.Start(prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "truediff:", err)
			os.Exit(1)
		}
	}
	err := run(flag.Arg(0), flag.Arg(1), *lang, *metricsAddr, *benchOut, prof.Enabled(), *explain, *check, *stat, *baselines, *quiet)
	if serr := stop(); serr != nil {
		fmt.Fprintln(os.Stderr, "truediff:", serr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "truediff:", err)
		os.Exit(1)
	}
}

// parseAll loads every input as a typed tree over one schema and allocator.
func parseAll(lang string, paths ...string) (*structdiff.Schema, *structdiff.Allocator, []*structdiff.Node, error) {
	srcs := make([]string, len(paths))
	for i, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, nil, err
		}
		srcs[i] = string(raw)
	}
	trees := make([]*structdiff.Node, len(paths))
	switch lang {
	case "python":
		f := pylang.NewFactory()
		for i, src := range srcs {
			t, err := pylang.Parse(src, f)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %w", paths[i], err)
			}
			trees[i] = t
		}
		return f.Schema(), f.Alloc(), trees, nil
	case "json":
		c := jsonlang.NewCodec()
		for i, src := range srcs {
			t, err := c.Parse(src)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %w", paths[i], err)
			}
			trees[i] = t
		}
		return c.Schema(), c.Alloc(), trees, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown language %q", lang)
	}
}

// parseBoth loads both inputs as typed trees over one schema and allocator.
func parseBoth(lang, oldPath, newPath string) (*structdiff.Schema, *structdiff.Allocator, *structdiff.Node, *structdiff.Node, error) {
	sch, alloc, trees, err := parseAll(lang, oldPath, newPath)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return sch, alloc, trees[0], trees[1], nil
}

// runMerge implements -merge: three-way merge of two descendants against a
// common ancestor. It prints the merged script (unless -quiet) and, with
// -stats, the merge statistics. Conflicts under -merge-policy fail are
// printed one per line; main turns errMergeConflicts into exit status 2.
func runMerge(basePath, oursPath, theirsPath, lang, policy string, stat, quiet bool) error {
	pol, err := structdiff.ParseMergePolicy(policy)
	if err != nil {
		return err
	}
	sch, alloc, trees, err := parseAll(lang, basePath, oursPath, theirsPath)
	if err != nil {
		return err
	}
	base, ours, theirs := trees[0], trees[1], trees[2]

	start := time.Now()
	res, err := structdiff.Merge(base, ours, theirs,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc), structdiff.WithMergePolicy(pol))
	elapsed := time.Since(start)
	if err != nil {
		var ce *structdiff.MergeConflictError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "merge: %d conflicts:\n", len(ce.Conflicts))
			for _, c := range ce.Conflicts {
				fmt.Fprintf(os.Stderr, "  %v\n", c)
			}
			return errMergeConflicts
		}
		return err
	}

	if !quiet {
		fmt.Println(res.Script)
	}
	for _, c := range res.Conflicts {
		fmt.Fprintf(os.Stderr, "resolved (%v): %v\n", c.Resolution, c)
	}
	if stat {
		s := res.Stats
		fmt.Printf("ancestor nodes: %d\n", base.Size())
		fmt.Printf("ours:           %d edits in %d groups\n", s.OursEdits, s.OursGroups)
		fmt.Printf("theirs:         %d edits in %d groups\n", s.TheirsEdits, s.TheirsGroups)
		fmt.Printf("merged:         %d edits (%d dropped by policy)\n", s.MergedEdits, s.DroppedEdits)
		fmt.Printf("conflicts:      %d resolved %v, %d auto-resolved convergent\n", s.Conflicts, pol, s.AutoResolved)
		fmt.Printf("merge time:     %s\n", elapsed)
	}

	// The merged script is verified well-typed and applicable by the merge
	// itself; apply it here so the CLI's success means "this script
	// patches the ancestor", same as -check does for plain diffs.
	mt, err := structdiff.MTreeFromTree(sch, base)
	if err != nil {
		return err
	}
	if err := structdiff.ApplyMerge(mt, res, nil); err != nil {
		return fmt.Errorf("merged script does not apply: %w", err)
	}
	return nil
}

// errMergeConflicts signals main to exit with status 2 (conflicts found
// and reported; distinct from operational failure).
var errMergeConflicts = errors.New("merge conflicts")

func run(oldPath, newPath, lang, metricsAddr, benchOut string, profiled, explain, check, stat, baselines, quiet bool) error {
	sch, alloc, before, after, err := parseBoth(lang, oldPath, newPath)
	if err != nil {
		return err
	}
	var labelOpts []structdiff.Option
	if profiled {
		labelOpts = append(labelOpts, structdiff.WithProfileLabels())
	}
	if explain {
		labelOpts = append(labelOpts, structdiff.WithExplain(),
			structdiff.WithQualityBaseline(structdiff.DefaultQualityBaselineMaxNodes))
	}

	// Without -metrics-addr the diff runs directly; with it, the pair is
	// routed through an engine so the endpoint has real telemetry (phase
	// histograms, counters) to serve. The engine ingests clones drawn from
	// the parse allocator, so -check verifies against the ingested pair.
	var (
		res     *structdiff.Result
		prov    *structdiff.Explanation
		qual    *structdiff.QualityMetrics
		elapsed time.Duration
		eng     *structdiff.Engine
	)
	src, dst := before, after
	if metricsAddr != "" {
		eng, err = structdiff.NewEngine(sch, labelOpts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof)\n", metricsAddr)
		go func() {
			if err := http.ListenAndServe(metricsAddr, structdiff.MetricsHandler(eng)); err != nil {
				fmt.Fprintln(os.Stderr, "truediff: metrics server:", err)
			}
		}()
		start := time.Now()
		src, dst = eng.Ingest(before, alloc), eng.Ingest(after, alloc)
		results, derr := eng.DiffBatch(nil, []structdiff.Pair{{Source: src, Target: dst, Label: oldPath + " -> " + newPath}})
		elapsed = time.Since(start)
		if derr != nil {
			return derr
		}
		if results[0].Err != nil {
			return results[0].Err
		}
		res = results[0].Result
		if explain {
			prov = results[0].Explain
			q := structdiff.MeasureQuality(src, dst, res.Script, structdiff.DefaultQualityBaselineMaxNodes)
			qual = &q
		}
	} else if explain {
		start := time.Now()
		ex, eerr := structdiff.Explain(before, after,
			append([]structdiff.Option{structdiff.WithSchema(sch), structdiff.WithAllocator(alloc)}, labelOpts...)...)
		elapsed = time.Since(start)
		if eerr != nil {
			return eerr
		}
		res, prov, qual = ex.Result, ex.Provenance, &ex.Quality
	} else {
		start := time.Now()
		res, err = structdiff.Diff(before, after,
			append([]structdiff.Option{structdiff.WithSchema(sch), structdiff.WithAllocator(alloc)}, labelOpts...)...)
		elapsed = time.Since(start)
		if err != nil {
			return err
		}
	}

	if benchOut != "" {
		if err := writeBenchReport(benchOut, lang, before.Size()+after.Size(), res.Script.EditCount(), elapsed); err != nil {
			return err
		}
	}

	if !quiet {
		if prov != nil {
			for i, e := range res.Script.Edits {
				fmt.Println(e)
				if i < len(prov.Edits) {
					fmt.Println("    ^", prov.Edits[i])
				}
			}
		} else {
			fmt.Println(res.Script)
		}
	}
	if prov != nil && qual != nil {
		fmt.Printf("explain: %d preemptive, %d selected (%d exact), %d revoked\n",
			prov.Preemptive, prov.Selected, prov.PreferredWins, prov.Revoked)
		fmt.Printf("quality: reuse %.1f%%, %.2f edits/changed node, script/tree %.3f\n",
			100*qual.ReuseRatio, qual.EditsPerChangedNode, qual.ScriptTreeRatio)
		if qual.Baselined {
			fmt.Printf("quality: optimality gap %+.1f%% (%d compound vs %d minimal)\n",
				100*qual.OptimalityGap, qual.CompoundEdits, qual.MinimalEdits)
		}
	}
	if stat {
		fmt.Printf("source nodes:  %d\n", before.Size())
		fmt.Printf("target nodes:  %d\n", after.Size())
		fmt.Printf("edits:         %d raw, %d compound\n", res.Script.Len(), res.Script.EditCount())
		fmt.Printf("breakdown:     %s\n", structdiff.ComputeStats(res.Script))
		fmt.Printf("diff time:     %s (%.0f nodes/ms)\n", elapsed,
			float64(before.Size()+after.Size())/(float64(elapsed.Nanoseconds())/1e6))
	}
	if check {
		if err := structdiff.WellTyped(sch, res.Script); err != nil {
			return fmt.Errorf("script is ill-typed: %w", err)
		}
		mt, err := structdiff.MTreeFromTree(sch, src)
		if err != nil {
			return err
		}
		if err := mt.Comply(res.Script); err != nil {
			return fmt.Errorf("script does not comply with the source tree: %w", err)
		}
		if err := mt.Patch(res.Script); err != nil {
			return fmt.Errorf("patching failed: %w", err)
		}
		if !mt.EqualTree(dst) {
			return fmt.Errorf("patched tree does not equal the target tree")
		}
		fmt.Println("check: script is well-typed and patches the source into the target ✓")
	}
	if baselines {
		gs, gd := gumtree.FromTree(before), gumtree.FromTree(after)
		gStart := time.Now()
		gScript, _ := gumtree.Diff(gs, gd, gumtree.DefaultOptions())
		gElapsed := time.Since(gStart)
		hStart := time.Now()
		patch := hdiff.Diff(before, after, hdiff.DefaultOptions())
		hElapsed := time.Since(hStart)
		fmt.Printf("baseline gumtree: %d actions in %s\n", gScript.Len(), gElapsed)
		fmt.Printf("baseline hdiff:   %d constructors in %s\n", patch.Size(), hElapsed)
		fmt.Printf("truediff:         %d compound edits in %s\n", res.Script.EditCount(), elapsed)
	}
	if eng != nil {
		fmt.Printf("engine snapshot:\n%s\n", eng.Snapshot())
		fmt.Fprintln(os.Stderr, "metrics endpoint is live; press Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}
