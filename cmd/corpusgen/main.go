// Command corpusgen writes a synthetic repository history to disk as
// rendered Python sources, so the truediff CLI (and external tools) can be
// exercised on file pairs:
//
//	corpusgen -out /tmp/corpus -commits 20
//	truediff -stats /tmp/corpus/commit-0003/engine_utils_2.py.before \
//	                /tmp/corpus/commit-0003/engine_utils_2.py.after
//
// Every commit directory holds NAME.before / NAME.after pairs for the
// files it changed, plus a CHANGES file listing the applied edit kinds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/structdiff/corpus"
)

func main() {
	var (
		out      = flag.String("out", "corpus-out", "output directory")
		seed     = flag.Int64("seed", 1, "corpus seed")
		files    = flag.Int("files", 10, "files in the repository")
		commits  = flag.Int("commits", 20, "commits to generate")
		minNodes = flag.Int("min-nodes", 200, "minimum module size in AST nodes")
		maxNodes = flag.Int("max-nodes", 1500, "maximum module size in AST nodes")
	)
	flag.Parse()

	h := corpus.Generate(corpus.Options{
		Seed: *seed, Files: *files, Commits: *commits,
		MaxFilesPerCommit: 3, MinNodes: *minNodes, MaxNodes: *maxNodes,
		MaxEditsPerFile: 4,
	})

	written := 0
	for _, c := range h.Commits {
		dir := filepath.Join(*out, fmt.Sprintf("commit-%04d", c.Seq))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		var changes strings.Builder
		for _, fc := range c.Files {
			before, after := corpus.RenderChange(fc)
			base := strings.ReplaceAll(fc.Path, "/", "_")
			if err := os.WriteFile(filepath.Join(dir, base+".before"), []byte(before), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, base+".after"), []byte(after), 0o644); err != nil {
				fatal(err)
			}
			kinds := make([]string, len(fc.Edits))
			for i, k := range fc.Edits {
				kinds[i] = k.String()
			}
			fmt.Fprintf(&changes, "%s: %s\n", fc.Path, strings.Join(kinds, ", "))
			written++
		}
		if err := os.WriteFile(filepath.Join(dir, "CHANGES"), []byte(changes.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d file pairs across %d commits to %s\n", written, *commits, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
