// Command evaluate regenerates the paper's evaluation artifacts (DESIGN.md
// experiment index E1–E6) on the synthetic corpus and prints them as text:
//
//	evaluate -experiment fig4     # Figure 4: conciseness box plots
//	evaluate -experiment fig5     # Figure 5: throughput box plots
//	evaluate -experiment inca     # §6 incremental computing
//	evaluate -experiment scaling  # Theorem 4.1 linear run time
//	evaluate -experiment engine   # batch engine vs sequential replay
//	evaluate -experiment all
//
// Observability (engine-backed experiments):
//
//	evaluate -experiment engine -metrics-addr :9090   # live /metrics, expvar, pprof
//	evaluate -experiment engine -trace out.jsonl      # one JSONL record per diff
//	evaluate -experiment engine -slow-diff 5ms        # log diffs at/above 5ms
//
// Profiling and benchmarking (see docs/OBSERVABILITY.md; the same four
// flags exist on cmd/truediff and cmd/bench):
//
//	evaluate -experiment fig5 -cpuprofile cpu.pprof   # pprof CPU profile
//	evaluate -experiment engine -memprofile mem.pprof # post-run heap profile
//	evaluate -experiment engine -exectrace trace.out  # runtime/trace; phases
//	                                                  # appear as truediff/* regions
//	evaluate -experiment engine -bench-out run.json   # perfobs-schema timing report
//
// Profiling flags enable pprof phase labels automatically, so
// `go tool pprof -tagfocus phase=shares cpu.pprof` isolates one phase.
//
// Corpus scale is configurable; the defaults finish in well under a minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/perfobs"
	"repro/internal/profiling"
	"repro/structdiff"
	"repro/structdiff/corpus"
	"repro/structdiff/evaluation"
	"repro/structdiff/langs/pylang"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "fig4 | fig5 | inca | scaling | ablation | matching | engine | all")
		seed        = flag.Int64("seed", 1, "corpus seed")
		files       = flag.Int("files", 20, "number of files in the synthetic repository")
		commits     = flag.Int("commits", 100, "number of commits to generate")
		minNodes    = flag.Int("min-nodes", 300, "minimum module size in AST nodes")
		maxNodes    = flag.Int("max-nodes", 2500, "maximum module size in AST nodes")
		reps        = flag.Int("reps", 3, "repetitions per file, fastest kept")
		workers     = flag.Int("workers", 8, "worker goroutines for the engine experiment")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/vars, and /debug/pprof on this address while running")
		tracePath   = flag.String("trace", "", "write one JSONL trace record per engine diff to this file")
		traceMax    = flag.Int64("trace-max-bytes", 0, "rotate the -trace file past this size, keeping one .1 predecessor (0 disables)")
		slowDiff    = flag.Duration("slow-diff", 0, "log engine diffs whose wall time meets or exceeds this threshold (0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (enables phase labels)")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
		exectrace   = flag.String("exectrace", "", "write a runtime/trace execution trace to this file (phases appear as truediff/* regions)")
		benchOut    = flag.String("bench-out", "", "write the experiment's wall time as a perfobs-schema JSON report to this file (comparable via bench -compare)")
	)
	flag.Parse()

	prof := profiling.Config{CPUProfile: *cpuprofile, MemProfile: *memprofile, ExecTrace: *exectrace}
	stopProf := func() error { return nil }
	if prof.Enabled() {
		var err error
		stopProf, err = profiling.Start(prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
			os.Exit(1)
		}
	}
	expStart := time.Now()

	fullOpts := corpus.Options{
		Seed: *seed, Files: *files, Commits: *commits,
		MaxFilesPerCommit: 4, MinNodes: *minNodes, MaxNodes: *maxNodes,
		MaxEditsPerFile: 4,
	}
	halfOpts := corpus.Options{
		Seed: *seed, Files: *files / 2, Commits: *commits / 2,
		MaxFilesPerCommit: 3, MinNodes: *minNodes, MaxNodes: *maxNodes,
		MaxEditsPerFile: 4,
	}
	engineCfg := evaluation.Config{Corpus: halfOpts, Reps: *reps, Warmup: 20}

	// One engine serves every engine-backed experiment of the invocation,
	// with tracing, slow-diff logging, and the metrics endpoint wired to
	// it. Experiments that never touch it leave its counters at zero.
	engOpts := []structdiff.Option{structdiff.WithWorkers(*workers)}
	if prof.Enabled() {
		engOpts = append(engOpts, structdiff.WithProfileLabels())
	}
	if *slowDiff > 0 {
		engOpts = append(engOpts, structdiff.WithSlowDiffThreshold(*slowDiff))
	}
	var traceWriter *structdiff.TraceWriter
	var traceFile io.Closer
	if *tracePath != "" {
		// Rotation keeps append semantics (records accumulate across runs,
		// rolling past the bound); without it each run starts fresh.
		var w io.WriteCloser
		if *traceMax > 0 {
			rf, err := structdiff.OpenRotatingFile(*tracePath, *traceMax)
			if err != nil {
				fmt.Fprintf(os.Stderr, "evaluate: -trace: %v\n", err)
				os.Exit(1)
			}
			w = rf
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "evaluate: -trace: %v\n", err)
				os.Exit(1)
			}
			w = f
		}
		traceFile = w
		traceWriter = structdiff.NewTraceWriter(w)
		engOpts = append(engOpts, structdiff.WithObserver(func(ev structdiff.DiffEvent) {
			_ = traceWriter.Write(ev.TraceRecord())
		}))
	}
	eng, err := structdiff.NewEngine(pylang.Schema(), engOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof)\n", *metricsAddr)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, structdiff.MetricsHandler(eng)); err != nil {
				fmt.Fprintf(os.Stderr, "evaluate: metrics server: %v\n", err)
			}
		}()
	}

	needCorpus := *experiment == "fig4" || *experiment == "fig5" || *experiment == "all"
	var results []evaluation.FileResult
	if needCorpus {
		cfg := evaluation.Config{Corpus: fullOpts, Reps: *reps, Warmup: 20}
		runner := evaluation.NewRunner(cfg)
		fmt.Fprintf(os.Stderr, "corpus: %d changed files across %d commits\n",
			len(runner.History().Changes()), *commits)
		results = runner.Run()
	}

	switch *experiment {
	case "fig4":
		fmt.Println(evaluation.Fig4(results).Report())
	case "fig5":
		fmt.Println(evaluation.Fig5(results).Report())
	case "inca":
		fmt.Println(evaluation.RunIncA(evaluation.DefaultIncAConfig()).Report())
	case "scaling":
		fmt.Println(evaluation.ScalingReport(
			evaluation.RunScaling([]int{100, 316, 1000, 3162, 10000, 31623, 100000}, 3)))
	case "ablation":
		fmt.Println(evaluation.AblationReport(evaluation.RunAblations(halfOpts)))
	case "matching":
		fmt.Println(evaluation.RunMatching(halfOpts).Report())
	case "engine":
		fmt.Println(evaluation.RunEngineReplayOn(eng, engineCfg).Report())
	case "all":
		fmt.Println(evaluation.Fig4(results).Report())
		fmt.Println(evaluation.Fig5(results).Report())
		fmt.Println(evaluation.RunIncA(evaluation.DefaultIncAConfig()).Report())
		fmt.Println(evaluation.ScalingReport(
			evaluation.RunScaling([]int{100, 1000, 10000, 100000}, 3)))
		fmt.Println(evaluation.AblationReport(evaluation.RunAblations(halfOpts)))
		fmt.Println(evaluation.RunMatching(halfOpts).Report())
		fmt.Println(evaluation.RunEngineReplayOn(eng, engineCfg).Report())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	// Every experiment that routed diffs through the shared engine gets a
	// final cumulative snapshot (the per-experiment reports above show
	// per-replay deltas).
	if snap := eng.Snapshot(); snap.Diffs > 0 {
		fmt.Printf("final engine snapshot:\n%s\n", snap)
		if *slowDiff > 0 {
			fmt.Printf("slow diffs (>= %v): %d\n", *slowDiff, snap.SlowDiffs)
		}
	}
	if traceWriter != nil {
		if err := traceWriter.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: trace: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: trace: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d records written to %s\n", traceWriter.Count(), *tracePath)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
	}
	if *benchOut != "" {
		if err := writeBenchReport(*benchOut, *experiment, eng.Snapshot(), time.Since(expStart)); err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: -bench-out: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeBenchReport records the invocation's total experiment wall time (and
// the shared engine's cumulative work, when any experiment used it) as a
// perfobs-schema report, so experiment timings can be tracked across
// commits with `bench -compare` (single-sample statistics: the medians are
// the run itself).
func writeBenchReport(path, experiment string, snap structdiff.Snapshot, elapsed time.Duration) error {
	nodes := int64(snap.SourceNodes + snap.TargetNodes)
	res := perfobs.ScenarioResult{
		Name:       "cli/evaluate/" + experiment,
		System:     "evaluate",
		Corpus:     "cli",
		Edits:      "cli",
		Pairs:      int(snap.Diffs),
		Nodes:      nodes,
		Reps:       1,
		WallNS:     perfobs.Summarize([]float64{float64(elapsed.Nanoseconds())}),
		EditsTotal: int(snap.Edits),
	}
	if elapsed > 0 && nodes > 0 {
		res.NodesPerSec = perfobs.Summarize([]float64{float64(nodes) / elapsed.Seconds()})
	}
	rep := &perfobs.Report{
		SchemaVersion: perfobs.SchemaVersion,
		CreatedUnix:   time.Now().Unix(),
		Env:           perfobs.CaptureEnv(),
		Scenarios:     []perfobs.ScenarioResult{res},
	}
	return rep.WriteFile(path)
}
