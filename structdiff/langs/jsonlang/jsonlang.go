// Package jsonlang exposes the JSON tree language: a codec parsing JSON
// documents into schema-typed trees and rendering them back, so JSON
// documents can be diffed and patched through structdiff. It is the public
// face of internal/jsonlang.
package jsonlang

import (
	"repro/internal/jsonlang"
	"repro/internal/sig"
	"repro/internal/tree"
)

// Constructor tags of the JSON language.
const (
	TagObject = jsonlang.TagObject
)

// SortValue is the sort of every JSON value.
const SortValue = jsonlang.SortValue

// Schema returns a fresh schema declaring the JSON language.
func Schema() *sig.Schema { return jsonlang.Schema() }

// Codec parses and renders JSON against one schema and allocator.
type Codec = jsonlang.Codec

// NewCodec returns a codec over a fresh schema and allocator.
func NewCodec() *Codec { return jsonlang.NewCodec() }

// Render serializes a JSON tree back to JSON text.
func Render(n *tree.Node) string { return jsonlang.Render(n) }
