// Package pylang exposes the Python-subset language of the paper's
// evaluation (§6): a lexer, parser, renderer, and schema for a useful
// slice of Python, producing trees diffable through structdiff. It is the
// public face of internal/pylang.
package pylang

import (
	"repro/internal/pylang"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Schema returns a fresh schema declaring the Python subset.
func Schema() *sig.Schema { return pylang.Schema() }

// Factory builds Python trees against one schema and allocator.
type Factory = pylang.Factory

// NewFactory returns a factory over a fresh schema and allocator.
func NewFactory() *Factory { return pylang.NewFactory() }

// NewFactoryWith returns a factory over an existing schema and allocator,
// so several sources share one URI space.
func NewFactoryWith(sch *sig.Schema, alloc *uri.Allocator) *Factory {
	return pylang.NewFactoryWith(sch, alloc)
}

// Parse parses Python source into a module tree using the factory.
func Parse(src string, f *Factory) (*tree.Node, error) { return pylang.Parse(src, f) }

// ParseNew parses Python source with a fresh factory and returns both.
func ParseNew(src string) (*tree.Node, *Factory, error) { return pylang.ParseNew(src) }

// Render pretty-prints a module tree back to Python source.
func Render(mod *tree.Node) string { return pylang.Render(mod) }

// ListElems flattens one of the language's cons-list trees into a slice.
func ListElems(list *tree.Node) []*tree.Node { return pylang.ListElems(list) }

// LexError and ParseError report malformed source.
type (
	LexError   = pylang.LexError
	ParseError = pylang.ParseError
)
