// Package exp exposes the arithmetic expression language used throughout
// the paper's examples (§2): numbers, variables, arithmetic, calls, and
// let-bindings, plus a deterministic random generator and mutator for
// benchmarks. It is the public face of internal/exp.
package exp

import (
	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/tree"
)

// Constructor tags of the expression language.
const (
	Num  = exp.Num
	Var  = exp.Var
	Add  = exp.Add
	Sub  = exp.Sub
	Mul  = exp.Mul
	Call = exp.Call
	Let  = exp.Let
)

// Exp is the language's only sort.
const Exp = exp.Exp

// Schema returns a fresh schema declaring the expression language.
func Schema() *sig.Schema { return exp.Schema() }

// NewBuilder returns a tree builder over a fresh schema and allocator.
func NewBuilder() *tree.Builder { return exp.NewBuilder() }

// Gen deterministically generates and mutates random expression trees.
type Gen = exp.Gen

// NewGen returns a generator seeded for reproducibility.
func NewGen(seed int64) *Gen { return exp.NewGen(seed) }
