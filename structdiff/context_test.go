package structdiff_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/structdiff"
)

func TestDiffContextBackgroundMatchesDiff(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	opts := []structdiff.Option{structdiff.WithSchema(sch), structdiff.WithAllocator(alloc)}
	plain, err := structdiff.Diff(src, dst, opts...)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	// A fresh allocator state is needed for identical URIs; rebuild the pair.
	src2, dst2, sch2, alloc2 := buildPair(t)
	ctxRes, err := structdiff.DiffContext(context.Background(), src2, dst2,
		structdiff.WithSchema(sch2), structdiff.WithAllocator(alloc2))
	if err != nil {
		t.Fatalf("DiffContext: %v", err)
	}
	if plain.Script.EditCount() != ctxRes.Script.EditCount() {
		t.Errorf("DiffContext produced %d edits, Diff produced %d",
			ctxRes.Script.EditCount(), plain.Script.EditCount())
	}
	if _, err := structdiff.DiffContext(nil, src2, dst2, structdiff.WithSchema(sch2)); err != nil { //nolint:staticcheck // nil ctx tolerance is part of the contract
		t.Errorf("DiffContext with nil ctx: %v", err)
	}
}

func TestDiffContextCancellation(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := structdiff.DiffContext(ctx, src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc),
		structdiff.WithCheckpointEvery(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DiffContext: err = %v, want context.Canceled", err)
	}
}

func TestDiffContextHonoursDiffTimeout(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	_, err := structdiff.DiffContext(context.Background(), src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc),
		structdiff.WithDiffTimeout(time.Nanosecond),
		structdiff.WithCheckpointEvery(1))
	if !errors.Is(err, structdiff.ErrDiffTimeout) {
		t.Fatalf("DiffContext with 1ns timeout: err = %v, want ErrDiffTimeout", err)
	}
}

func TestPatchContext(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	patched, err := structdiff.PatchContext(context.Background(), src, res.Script, structdiff.WithSchema(sch))
	if err != nil {
		t.Fatalf("PatchContext: %v", err)
	}
	if !structdiff.TreesEqual(patched, res.Patched) {
		t.Error("PatchContext result differs from Diff's patched tree")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := structdiff.PatchContext(ctx, src, res.Script, structdiff.WithSchema(sch)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled PatchContext: err = %v, want context.Canceled", err)
	}
}

// TestDiffBatchClosesOneShotEngine pins the facade contract that DiffBatch
// tears its engine down on every path: a second batch through the facade
// must build a fresh engine rather than observe ErrEngineClosed, and a
// cancelled batch must not leave workers behind (which would deadlock the
// implicit Close on the error path).
func TestDiffBatchClosesOneShotEngine(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	pairs := []structdiff.Pair{{Source: src, Target: dst, Alloc: alloc}}
	if _, err := structdiff.DiffBatch(context.Background(), sch, pairs); err != nil {
		t.Fatalf("first DiffBatch: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := structdiff.DiffBatch(ctx, sch, pairs); err == nil {
		t.Fatal("cancelled DiffBatch: expected error")
	}

	src2, dst2, sch2, alloc2 := buildPair(t)
	if _, err := structdiff.DiffBatch(context.Background(), sch2,
		[]structdiff.Pair{{Source: src2, Target: dst2, Alloc: alloc2}}); err != nil {
		t.Fatalf("DiffBatch after error path: %v", err)
	}
}
