package structdiff_test

import (
	"context"
	"testing"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

// TestDiffContextSpans: a facade diff under WithSpans records one
// structdiff.diff span with the four truediff phases nested under it,
// joined to the trace carried on the context.
func TestDiffContextSpans(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	rec := structdiff.NewSpanRecorder()
	parent := structdiff.NewSpanContext()
	ctx := structdiff.WithTraceContext(context.Background(), parent)
	if _, err := structdiff.DiffContext(ctx, src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc),
		structdiff.WithSpans(rec)); err != nil {
		t.Fatalf("DiffContext: %v", err)
	}

	spans := rec.Spans()
	if len(spans) != 5 {
		t.Fatalf("recorded %d spans, want 5 (structdiff.diff + 4 phases)", len(spans))
	}
	var root *structdiff.Span
	for i := range spans {
		if spans[i].Name == "structdiff.diff" {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no structdiff.diff span")
	}
	if root.Trace != parent.Trace || root.Parent != parent.Span {
		t.Errorf("root span trace/parent = %s/%s, want context's %s/%s",
			root.Trace, root.Parent, parent.Trace, parent.Span)
	}
	for _, s := range spans {
		if s.Name == "structdiff.diff" {
			continue
		}
		if s.Trace != parent.Trace || s.Parent != root.ID {
			t.Errorf("phase %s trace/parent = %s/%s, want %s/%s",
				s.Name, s.Trace, s.Parent, parent.Trace, root.ID)
		}
	}
}

// TestDiffContextNoSpansNoTrace: without WithSpans the facade records
// nothing — the off path stays untraced.
func TestDiffContextNoSpansNoTrace(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	if _, err := structdiff.DiffContext(context.Background(), src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc)); err != nil {
		t.Fatalf("DiffContext: %v", err)
	}
}

// TestEngineFacadeObservability: the facade's WithSpans/WithLogger/WithSLO
// options reach the engine.
func TestEngineFacadeObservability(t *testing.T) {
	g := exp.NewGen(7)
	before := g.Tree(40)
	after := g.MutateN(before, 2)
	rec := structdiff.NewSpanRecorder()
	e, err := structdiff.NewEngine(g.Schema(),
		structdiff.WithWorkers(1), structdiff.WithSpans(rec))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	res, err := e.DiffBatch(context.Background(), []structdiff.Pair{
		{Source: before, Target: after, Label: "facade"},
	})
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	if res[0].Err != nil {
		t.Fatalf("pair failed: %v", res[0].Err)
	}
	if got := len(rec.Spans()); got != 5 {
		t.Fatalf("engine recorded %d spans, want 5", got)
	}
	if snap := e.Snapshot(); snap.SLO.Requests != 1 {
		t.Errorf("SLO window counted %d requests, want 1", snap.SLO.Requests)
	}
}
