package structdiff

import (
	"context"
	"time"

	"repro/internal/diffserve"
)

// DiffService is the transport-agnostic diffing surface: everything a
// high-throughput caller needs — single diffs, coalesced batches, metrics,
// lifecycle — without committing to where the work runs. Two
// implementations ship with the package:
//
//   - *Engine (NewEngine): in-process, zero transport cost;
//   - *ServiceClient (NewServiceClient): the same calls executed by a
//     diffd daemon over versioned HTTP/JSON.
//
// Code written against DiffService moves between them freely. The one
// visible difference is URI spaces: a remote diff's scripts and patched
// trees use server-assigned URIs (content digests, which URIs never
// affect, are identical on both sides).
type DiffService interface {
	// Diff computes the edit script from source to target. See
	// Engine.Diff for the contract on alloc.
	Diff(ctx context.Context, source, target *Node, alloc *Allocator) (*Result, error)
	// DiffBatch diffs many pairs concurrently; results are index-aligned
	// and per-pair failures land in PairResult.Err.
	DiffBatch(ctx context.Context, pairs []Pair) ([]PairResult, error)
	// Snapshot reports the implementation's cumulative counters.
	Snapshot() Snapshot
	// Close releases the implementation's resources; for an Engine this
	// waits for in-flight batches and drops the intern store.
	Close() error
}

// Both implementations are checked here, at compile time: a drifting
// method signature fails the build, not a user.
var (
	_ DiffService = (*Engine)(nil)
	_ DiffService = (*ServiceClient)(nil)
)

// --- Diff service (internal/diffserve) -----------------------------------

type (
	// ServiceClient executes DiffService calls against a diffd daemon,
	// caching server-confirmed tree refs so repeated operands travel as
	// content digests instead of full trees.
	ServiceClient = diffserve.Client
	// ServiceClientOption customizes a ServiceClient (tenant identity,
	// HTTP client, retries, circuit breaking, hedging).
	ServiceClientOption = diffserve.ClientOption
	// RetryPolicy parameterizes WithRetryPolicy: attempt bound,
	// full-jitter exponential backoff scale/cap, and an optional
	// per-attempt timeout.
	RetryPolicy = diffserve.RetryPolicy
	// CircuitBreakerConfig parameterizes WithCircuitBreaker: the rolling
	// failure-rate window, volume floor, trip ratio, and cooldown.
	CircuitBreakerConfig = diffserve.BreakerConfig
	// HedgingConfig parameterizes WithHedging: the hedge delay (fixed or
	// derived from the rolling attempt-latency p95) and the hedge bound.
	HedgingConfig = diffserve.HedgeConfig
	// ServiceClientSnapshot is a point-in-time copy of a ServiceClient's
	// resilience counters (attempts, retries, hedges, breaker activity).
	ServiceClientSnapshot = diffserve.ClientSnapshot
	// ServiceServer is the embeddable diff service: an http.Handler with
	// request coalescing, admission control, and graceful drain (cmd/diffd
	// wraps it in a daemon).
	ServiceServer = diffserve.Server
	// ServiceConfig parameterizes a ServiceServer.
	ServiceConfig = diffserve.Config
)

// ServiceWireVersion is the versioned wire schema this build speaks
// ("MAJOR.MINOR"; decoders accept any minor of their own major).
const ServiceWireVersion = diffserve.WireVersion

// NewServiceClient returns a DiffService executing against the diffd
// daemon at base (e.g. "http://localhost:8347") for one language. The
// schema must match the server's for that language; it decodes patched
// trees locally.
func NewServiceClient(base, lang string, sch *Schema, opts ...ServiceClientOption) *ServiceClient {
	return diffserve.NewClient(base, lang, sch, opts...)
}

// NewServiceServer builds an embeddable diff service from the
// configuration. Serve it with net/http; shut it down with Drain.
func NewServiceServer(cfg ServiceConfig) (*ServiceServer, error) {
	return diffserve.NewServer(cfg)
}

// WithServiceTenant sets the tenant identity the server's per-tenant
// concurrency limits account against.
func WithServiceTenant(tenant string) ServiceClientOption { return diffserve.WithTenant(tenant) }

// WithServiceSpans enables client-side tracing on a ServiceClient: each
// RPC records a span to sink and ships its context in the W3C traceparent
// header, so the server's request, queue, and engine spans join the
// caller's trace. Parent a client span on surrounding work by putting a
// SpanContext on ctx with WithTraceContext.
func WithServiceSpans(sink SpanSink) ServiceClientOption { return diffserve.WithSpans(sink) }

// WithRetryPolicy arms transparent retries on a ServiceClient: transient
// failures — transport errors, saturation sheds (429), drain refusals,
// 5xx answers, per-attempt timeouts — are re-attempted with full-jitter
// exponential backoff honoring the server's Retry-After advice and the
// request context. Safe because every request is idempotent: a diff is a
// pure function of two digest-identified trees, so a replay can only
// produce the same answer. The zero policy selects the defaults (4
// attempts, 50ms base backoff doubling to a 5s cap).
func WithRetryPolicy(pol RetryPolicy) ServiceClientOption { return diffserve.WithRetry(pol) }

// WithCircuitBreaker arms a per-endpoint circuit breaker: when an
// endpoint's windowed failure rate trips the configured ratio, calls
// fail fast with ErrCircuitOpen instead of piling onto a dead service,
// until a half-open probe succeeds. The zero config selects the defaults
// (30s window, 10-request floor, 0.5 ratio, 5s cooldown).
func WithCircuitBreaker(cfg CircuitBreakerConfig) ServiceClientOption {
	return diffserve.WithBreaker(cfg)
}

// WithHedging arms tail-latency hedging: an attempt still unanswered
// after the hedge delay is raced against a second copy of the same
// idempotent request; the first response wins and the loser is
// cancelled. The zero config derives the delay from the rolling
// attempt-latency p95, clamped to [10ms, 2s].
func WithHedging(cfg HedgingConfig) ServiceClientOption { return diffserve.WithHedge(cfg) }

// ServiceRetryAfter extracts the server's retry advice from a saturation
// error (errors.Is(err, ErrServiceUnavailable)); zero when err carries
// none.
func ServiceRetryAfter(err error) time.Duration { return diffserve.RetryAfter(err) }
