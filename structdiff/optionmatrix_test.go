package structdiff_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

// countingTracer counts span events; it must be concurrency-safe because
// the matrix runs engines with Workers > 1.
type countingTracer struct {
	begins, phases, ends atomic.Int64
}

func (c *countingTracer) BeginDiff(sourceNodes, targetNodes int)    { c.begins.Add(1) }
func (c *countingTracer) Phase(p structdiff.Phase, d time.Duration) { c.phases.Add(1) }
func (c *countingTracer) EndDiff(edits int, wall time.Duration)     { c.ends.Add(1) }

// TestOptionMatrix exercises the facade's engine options as a full cross
// product — tracer × fallback × per-diff timeout (including zero and
// invalid negative values) × fault injection — and checks each cell
// against the documented outcome:
//
//   - no fault: every pair succeeds, whatever the other options;
//   - an injected Error fault is an ordinary diff failure: never rescued
//     by fallback, always reported as ErrFaultInjected;
//   - an injected Panic fault is rescued by FallbackRootReplace and
//     reported as ErrDiffPanic under FallbackNone;
//   - an injected Delay fault only matters when it overruns an armed
//     deadline: then the pair times out (ErrDiffTimeout) under
//     FallbackNone and is rescued under FallbackRootReplace;
//   - zero and negative timeouts disable the deadline rather than erroring;
//   - an armed tracer sees balanced BeginDiff/EndDiff spans on clean runs
//     and never more ends than begins on failing ones.
func TestOptionMatrix(t *testing.T) {
	const nPairs = 3

	type outcome int
	const (
		wantOK outcome = iota
		wantFallback
		wantErrInjected
		wantErrPanic
		wantErrTimeout
	)

	tracers := []struct{ name string }{{"tracer=off"}, {"tracer=on"}}
	fallbacks := []struct {
		name string
		mode structdiff.FallbackMode
	}{
		{"fallback=none", structdiff.FallbackNone},
		{"fallback=rootreplace", structdiff.FallbackRootReplace},
	}
	timeouts := []struct {
		name string
		d    time.Duration
	}{
		{"timeout=0", 0},
		{"timeout=-1s", -time.Second}, // invalid: must behave as disabled
		{"timeout=25ms", 25 * time.Millisecond},
		{"timeout=1m", time.Minute},
	}
	faults := []struct {
		name  string
		fault *structdiff.Fault
	}{
		{"fault=none", nil},
		{"fault=error", &structdiff.Fault{Site: structdiff.FaultSiteDiff, Kind: structdiff.FaultError}},
		{"fault=panic", &structdiff.Fault{Site: structdiff.FaultSiteDiff, Kind: structdiff.FaultPanic}},
		{"fault=delay", &structdiff.Fault{
			Site: structdiff.FaultSiteCheckpoint, Kind: structdiff.FaultDelay, Delay: 150 * time.Millisecond,
			Times: nPairs, // one delay per pair, not per checkpoint poll
		}},
	}

	expect := func(fb structdiff.FallbackMode, to time.Duration, fault string) outcome {
		switch fault {
		case "fault=error":
			return wantErrInjected // plain errors are deliberately not rescued
		case "fault=panic":
			if fb == structdiff.FallbackRootReplace {
				return wantFallback
			}
			return wantErrPanic
		case "fault=delay":
			if to != 25*time.Millisecond {
				return wantOK // no (effective) deadline: the delay just runs
			}
			if fb == structdiff.FallbackRootReplace {
				return wantFallback
			}
			return wantErrTimeout
		default:
			return wantOK
		}
	}

	g := exp.NewGen(7)
	before := g.Tree(60)
	sch := g.Schema()
	pairs := make([]structdiff.Pair, nPairs)
	for i := range pairs {
		after := g.MutateN(before, 2)
		pairs[i] = structdiff.Pair{Source: before, Target: after, Label: fmt.Sprintf("pair-%d", i)}
		before = after
	}

	for _, trc := range tracers {
		for _, fb := range fallbacks {
			for _, to := range timeouts {
				for _, ft := range faults {
					name := trc.name + "/" + fb.name + "/" + to.name + "/" + ft.name
					want := expect(fb.mode, to.d, ft.name)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						opts := []structdiff.Option{
							structdiff.WithWorkers(2),
							structdiff.WithFallback(fb.mode),
							structdiff.WithDiffTimeout(to.d),
							structdiff.WithCheckpointEvery(1),
						}
						var tr *countingTracer
						if trc.name == "tracer=on" {
							tr = &countingTracer{}
							opts = append(opts, structdiff.WithTracer(tr))
						}
						if ft.fault != nil {
							opts = append(opts,
								structdiff.WithFaultInjection(structdiff.NewFaultInjector(1, *ft.fault)))
						}
						eng, err := structdiff.NewEngine(sch, opts...)
						if err != nil {
							t.Fatal(err)
						}
						results, err := eng.DiffBatch(context.Background(), pairs)
						if err != nil {
							t.Fatalf("DiffBatch: %v", err)
						}
						for i, r := range results {
							switch want {
							case wantOK, wantFallback:
								if r.Err != nil {
									t.Fatalf("pair %d failed: %v", i, r.Err)
								}
								if r.Stats.Fallback != (want == wantFallback) {
									t.Fatalf("pair %d: Stats.Fallback = %v, want %v",
										i, r.Stats.Fallback, want == wantFallback)
								}
								if err := structdiff.WellTyped(sch, r.Result.Script); err != nil {
									t.Fatalf("pair %d: script ill-typed: %v", i, err)
								}
								patched, err := structdiff.Patch(pairs[i].Source, r.Result.Script,
									structdiff.WithSchema(sch))
								if err != nil {
									t.Fatalf("pair %d: patch: %v", i, err)
								}
								if !structdiff.StructurallyEquivalent(patched, pairs[i].Target) ||
									!structdiff.LiterallyEquivalent(patched, pairs[i].Target) {
									t.Fatalf("pair %d: patched tree differs from target", i)
								}
							case wantErrInjected:
								if !errors.Is(r.Err, structdiff.ErrFaultInjected) {
									t.Fatalf("pair %d: err = %v, want ErrFaultInjected", i, r.Err)
								}
							case wantErrPanic:
								if !errors.Is(r.Err, structdiff.ErrDiffPanic) {
									t.Fatalf("pair %d: err = %v, want ErrDiffPanic", i, r.Err)
								}
							case wantErrTimeout:
								if !errors.Is(r.Err, structdiff.ErrDiffTimeout) {
									t.Fatalf("pair %d: err = %v, want ErrDiffTimeout", i, r.Err)
								}
							}
						}
						if tr != nil {
							begins, ends := tr.begins.Load(), tr.ends.Load()
							if want == wantOK && (begins != nPairs || ends != nPairs) {
								t.Fatalf("tracer saw %d begins / %d ends, want %d/%d",
									begins, ends, nPairs, nPairs)
							}
							if ends > begins {
								t.Fatalf("tracer saw more ends (%d) than begins (%d)", ends, begins)
							}
						}
					})
				}
			}
		}
	}
}

// TestOptionsInvalidValues pins down the facade's tolerance for zero and
// out-of-range option values on the single-shot path: they must be
// normalized, not crash or error.
func TestOptionsInvalidValues(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst,
		structdiff.WithSchema(sch),
		structdiff.WithAllocator(alloc),
		structdiff.WithDiffTimeout(-time.Hour), // negative: disabled
		structdiff.WithCheckpointEvery(-5),     // negative: default cadence
		structdiff.WithWorkers(-3),             // negative: GOMAXPROCS
		structdiff.WithTracer(nil),             // nil tracer: no tracing
		structdiff.WithFaultInjection(nil),     // nil injector: no faults
		structdiff.WithSlowDiffThreshold(-1),   // negative: disabled
	)
	if err != nil {
		t.Fatalf("Diff with degenerate options: %v", err)
	}
	if err := structdiff.WellTyped(sch, res.Script); err != nil {
		t.Fatalf("script ill-typed: %v", err)
	}

	// The same degenerate values must also be harmless at engine build
	// time, batch size zero included.
	eng, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(0),
		structdiff.WithDiffTimeout(-time.Hour),
		structdiff.WithCheckpointEvery(0),
		structdiff.WithFallback(structdiff.FallbackMode(99)), // unknown mode: behaves as none
	)
	if err != nil {
		t.Fatalf("NewEngine with degenerate options: %v", err)
	}
	results, err := eng.DiffBatch(context.Background(), nil)
	if err != nil {
		t.Fatalf("empty DiffBatch: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}
