package structdiff_test

import (
	"context"
	"errors"
	"testing"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

// buildPair returns two small expression trees plus their schema and
// allocator, built purely through the public facade surface.
func buildPair(t *testing.T) (src, dst *structdiff.Node, sch *structdiff.Schema, alloc *structdiff.Allocator) {
	t.Helper()
	g := exp.NewGen(42)
	before := g.Tree(60)
	after := g.MutateN(before, 3)
	alloc = structdiff.NewAllocator()
	src = structdiff.Clone(before, alloc, structdiff.SHA256)
	dst = structdiff.Clone(after, alloc, structdiff.SHA256)
	return src, dst, g.Schema(), alloc
}

func TestDiffPatchRoundTrip(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if err := structdiff.WellTyped(sch, res.Script); err != nil {
		t.Fatalf("script not well-typed: %v", err)
	}
	patched, err := structdiff.Patch(src, res.Script, structdiff.WithSchema(sch))
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !structdiff.TreesEqual(patched, res.Patched) {
		t.Error("Patch result differs from Diff's patched tree")
	}
	st := structdiff.ComputeStats(res.Script)
	if st.Compound != res.Script.EditCount() {
		t.Error("stats compound count disagrees with EditCount")
	}
}

func TestDiffRequiresSchema(t *testing.T) {
	src, dst, _, _ := buildPair(t)
	if _, err := structdiff.Diff(src, dst); !errors.Is(err, structdiff.ErrNoSchema) {
		t.Errorf("Diff without schema: err = %v, want ErrNoSchema", err)
	}
	if _, err := structdiff.Patch(src, &structdiff.Script{}); !errors.Is(err, structdiff.ErrNoSchema) {
		t.Errorf("Patch without schema: err = %v, want ErrNoSchema", err)
	}
	if _, err := structdiff.NewEngine(nil); !errors.Is(err, structdiff.ErrNoSchema) {
		t.Errorf("NewEngine without schema: err = %v, want ErrNoSchema", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	src, dst, sch, _ := buildPair(t)

	if _, err := structdiff.Diff(nil, dst, structdiff.WithSchema(sch)); !errors.Is(err, structdiff.ErrNilTree) {
		t.Errorf("nil source: err = %v, want ErrNilTree", err)
	}

	foreign := structdiff.NewSchema("foreign")
	if _, err := structdiff.Diff(src, dst, structdiff.WithSchema(foreign)); !errors.Is(err, structdiff.ErrSchemaMismatch) {
		t.Errorf("foreign schema: err = %v, want ErrSchemaMismatch", err)
	}

	// An ill-typed script: a lone detach leaves a dangling subtree.
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Script.Edits) > 0 {
		truncated := &structdiff.Script{Edits: res.Script.Edits[:1]}
		if err := structdiff.WellTyped(sch, truncated); !errors.Is(err, structdiff.ErrIllTyped) {
			t.Errorf("truncated script: err = %v, want ErrIllTyped", err)
		}
		// Applying a script against the wrong base tree is non-compliant.
		if _, err := structdiff.Patch(dst, res.Script, structdiff.WithSchema(sch)); !errors.Is(err, structdiff.ErrNonCompliantScript) {
			t.Errorf("script on wrong base: err = %v, want ErrNonCompliantScript", err)
		}
	}

	// A two-to-one matching is rejected.
	pairs := []structdiff.MatchPair{{Src: src, Dst: dst}, {Src: src, Dst: dst}}
	if _, err := structdiff.DiffWithMatching(src, dst, pairs, structdiff.WithSchema(sch)); !errors.Is(err, structdiff.ErrBadMatching) {
		t.Errorf("double matching: err = %v, want ErrBadMatching", err)
	}
}

func TestDiffOptionsChangeBehaviour(t *testing.T) {
	src, dst, sch, _ := buildPair(t)
	base, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := structdiff.Diff(src, dst,
		structdiff.WithSchema(sch),
		structdiff.WithEquivalence(structdiff.ExactOnly),
		structdiff.WithSelectionOrder(structdiff.FIFO))
	if err != nil {
		t.Fatal(err)
	}
	// Both must be valid; the ablation may be less concise but never
	// beats exact reuse by construction on these mutations.
	if err := structdiff.WellTyped(sch, exact.Script); err != nil {
		t.Fatalf("ablation script ill-typed: %v", err)
	}
	if base.Script.EditCount() > exact.Script.EditCount() {
		t.Errorf("paper config (%d edits) less concise than ExactOnly/FIFO ablation (%d edits)",
			base.Script.EditCount(), exact.Script.EditCount())
	}
}

func TestEngineThroughFacade(t *testing.T) {
	g := exp.NewGen(7)
	sch := g.Schema()
	e, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(4),
		structdiff.WithHashKind(structdiff.SHA256))
	if err != nil {
		t.Fatal(err)
	}

	var pairs []structdiff.Pair
	before := g.Tree(80)
	for i := 0; i < 6; i++ {
		after := g.MutateN(before, 2)
		alloc := structdiff.NewAllocator()
		src := e.Ingest(before, alloc)
		dst := e.Ingest(after, alloc)
		pairs = append(pairs, structdiff.Pair{Source: src, Target: dst, Alloc: alloc})
		before = after
	}
	results, err := e.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("pair %d: %v", i, r.Err)
		}
		if !structdiff.TreesEqual(r.Result.Patched, pairs[i].Target) {
			t.Errorf("pair %d: patched != target", i)
		}
	}
	snap := e.Snapshot()
	if snap.Diffs != uint64(len(pairs)) {
		t.Errorf("Snapshot().Diffs = %d, want %d", snap.Diffs, len(pairs))
	}
	if snap.MemoHits == 0 {
		t.Error("chained ingests should hit the digest memo")
	}
}

func TestDiffBatchConvenience(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	results, err := structdiff.DiffBatch(context.Background(), sch,
		[]structdiff.Pair{{Source: src, Target: dst, Alloc: alloc}},
		structdiff.WithWorkers(2))
	if err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("DiffBatch: %v / %+v", err, results)
	}
	if results[0].Stats.Edits != results[0].Result.Script.EditCount() {
		t.Error("per-pair stats edit count disagrees with script")
	}
}
