package structdiff

import (
	"context"
	"fmt"

	"repro/internal/quality"
	"repro/internal/telemetry"
	"repro/internal/truediff"
)

// Diff explainability: per-edit provenance and script-quality metrics.
// See docs/OBSERVABILITY.md ("Explainability") for the data model.

type (
	// Explanation is the per-diff provenance report: one EditProvenance
	// per script edit (index-aligned), plus selection summary counts.
	Explanation = truediff.Explanation
	// EditProvenance explains one edit: which equivalence class matched,
	// whether the preferred (exact) or a structural candidate won, at
	// which height, how many candidates were considered, and why losing
	// subtrees were loaded or unloaded instead of reused.
	EditProvenance = truediff.EditProvenance
	// ExplainSink receives explanations (see DiffOptions.Explain);
	// ExplainCollector is the trivial keep-last sink.
	ExplainSink      = truediff.ExplainSink
	ExplainCollector = truediff.ExplainCollector
	// QualityMetrics is the per-diff conciseness report of
	// internal/quality: reuse ratio, edits per changed node, script-size
	// to tree-size ratio, and (on small trees) the optimality gap against
	// an exact minimal-script baseline.
	QualityMetrics = quality.Metrics
)

// DefaultQualityBaselineMaxNodes caps the exact minimal-script baseline:
// pairs whose trees both fit under it are baselined, larger pairs skip
// the quadratic computation.
const DefaultQualityBaselineMaxNodes = quality.DefaultBaselineMaxNodes

// WithExplain turns on per-edit provenance. On an Engine every
// successful PairResult carries PairResult.Explain (fallback scripts
// carry none); on Explain/ExplainContext it is implied. The
// instrumentation is allocation-free when off and never perturbs the
// emitted script.
func WithExplain() Option { return func(c *config) { c.explain = true } }

// WithQualityBaseline enables the exact minimal-script baseline on pairs
// whose trees both have at most maxNodes nodes: DiffStats gain
// MinimalEdits and OptimalityGap, and the engine aggregates them into
// structdiff_quality_* metrics. The baseline is O(n²·d²) — keep the cap
// small (DefaultQualityBaselineMaxNodes is a good ceiling). Zero (the
// default) disables baselining; reuse/conciseness ratios are computed
// regardless.
func WithQualityBaseline(maxNodes int) Option { return func(c *config) { c.qbase = maxNodes } }

// Explained is the result of Explain: the ordinary diff Result plus the
// per-edit provenance and the script-quality metrics.
type Explained struct {
	*Result
	// Provenance is index-aligned with Result.Script.Edits.
	Provenance *Explanation
	// Quality reports the script's conciseness; Quality.Baselined is set
	// only when WithQualityBaseline admitted the pair.
	Quality QualityMetrics
}

// Explain is Diff with explainability: it computes the script, annotates
// every edit with its provenance, and measures the script's quality.
// WithSchema is required; WithQualityBaseline additionally computes the
// optimality gap on small trees. It is ExplainContext with a background
// context.
func Explain(src, dst *Node, opts ...Option) (*Explained, error) {
	return ExplainContext(context.Background(), src, dst, opts...)
}

// ExplainContext is the context-first form of Explain, with DiffContext's
// cancellation semantics.
func ExplainContext(ctx context.Context, src, dst *Node, opts ...Option) (*Explained, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.spans != nil {
		span := telemetry.StartSpan(cfg.spans, telemetry.SpanContextFromContext(ctx), "structdiff.explain")
		defer span.End()
		ctx = telemetry.ContextWithTracer(ctx, telemetry.PhaseSpans(cfg.spans, span.Context()))
	}
	col := &ExplainCollector{}
	cfg.diff.Explain = col
	d := truediff.NewWithOptions(cfg.sch, cfg.diff)
	res, err := d.DiffScratchProfiled(ctx, src, dst, cfg.alloc, truediff.NewScratch(), ctxCheckpoint(ctx, cfg.timeout))
	if err != nil {
		return nil, err
	}
	qbase := cfg.qbase
	if qbase <= 0 {
		qbase = -1 // facade default: no quadratic baseline unless asked
	}
	return &Explained{
		Result:     res,
		Provenance: col.Last,
		Quality:    quality.Measure(src, dst, res.Script, qbase),
	}, nil
}

// MeasureQuality computes the conciseness metrics for a script that
// transforms src into dst (for scripts obtained elsewhere, e.g. from
// DiffWithMatching or a baseline differ). baselineMaxNodes bounds the
// exact minimal-script baseline: 0 selects
// DefaultQualityBaselineMaxNodes, negative disables it.
func MeasureQuality(src, dst *Node, s *Script, baselineMaxNodes int) QualityMetrics {
	return quality.Measure(src, dst, s, baselineMaxNodes)
}
