package structdiff

// This file re-exports the distributed-tracing, flight-recorder, SLO, and
// trace-rotation surface of internal/telemetry, so applications can trace
// diffs end to end — facade, engine, or diffd service — without importing
// internal paths. See docs/TRACING.md for the span taxonomy and wiring
// recipes.

import (
	"repro/internal/telemetry"
)

type (
	// TraceID and SpanID are the W3C trace-context identifiers (16 and 8
	// bytes); SpanContext pairs them for propagation (Traceparent renders
	// the wire header, ParseTraceparent reads it back).
	TraceID     = telemetry.TraceID
	SpanID      = telemetry.SpanID
	SpanContext = telemetry.SpanContext
	// Span is one timed operation of a trace; SpanSink receives completed
	// spans (WithSpans, ServiceConfig.Spans); SpanAttr is one span
	// attribute; SpanRecorder is an in-memory sink for tests and trace
	// inspection.
	Span         = telemetry.Span
	SpanSink     = telemetry.SpanSink
	SpanAttr     = telemetry.Attr
	SpanRecorder = telemetry.SpanRecorder
	// FlightRecorder keeps a bounded in-memory ring of recent and
	// slowest-K diff records, served live at /debug/diffz by the diffd
	// server; FlightEntry is one record, FlightSnapshot the handler's
	// JSON shape.
	FlightRecorder = telemetry.FlightRecorder
	FlightEntry    = telemetry.FlightEntry
	FlightSnapshot = telemetry.FlightSnapshot
	// SLO evaluates rolling-window service-level objectives (availability,
	// latency attainment, burn rates); SLOConfig configures it (WithSLO),
	// SLOSnapshot is its point-in-time evaluation (Snapshot.SLO).
	SLO         = telemetry.SLO
	SLOConfig   = telemetry.SLOConfig
	SLOSnapshot = telemetry.SLOSnapshot
	// RotatingFile is a size-rotated append-only log file for JSONL trace
	// streams (diffd -trace with -trace-max-bytes).
	RotatingFile = telemetry.RotatingFile
)

// NewSpanContext mints a fresh root trace context (for correlating work
// that did not arrive with a traceparent header).
func NewSpanContext() SpanContext { return telemetry.NewSpanContext() }

// ParseTraceparent parses a W3C traceparent header value; the returned
// context is Valid() only if the header carried usable IDs.
func ParseTraceparent(h string) (SpanContext, error) { return telemetry.ParseTraceparent(h) }

// StartSpan opens a span delivering to sink when ended (a fresh root
// trace when parent is invalid). A nil sink returns a nil span whose
// every method no-ops, so call sites need no tracing-enabled check.
func StartSpan(sink SpanSink, parent SpanContext, name string) *Span {
	return telemetry.StartSpan(sink, parent, name)
}

// NewSpanRecorder returns an empty in-memory span sink.
func NewSpanRecorder() *SpanRecorder { return telemetry.NewSpanRecorder() }

// NewFlightRecorder returns a flight recorder keeping the given number of
// recent entries and slowest entries (non-positive values take defaults).
func NewFlightRecorder(recent, slowest int) *FlightRecorder {
	return telemetry.NewFlightRecorder(recent, slowest)
}

// NewSLO returns a rolling-window SLO evaluator (zero cfg fields take the
// defaults documented on SLOConfig).
func NewSLO(cfg SLOConfig) *SLO { return telemetry.NewSLO(cfg) }

// OpenRotatingFile opens (appending) a log file that renames itself to
// path+".1" and starts fresh whenever a write would push it past
// maxBytes; maxBytes <= 0 disables rotation. Writes are atomic with
// respect to rotation, so JSONL records never straddle a rollover.
func OpenRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	return telemetry.OpenRotatingFile(path, maxBytes)
}
