// Package corpus exposes the synthetic version-history generator used by
// the evaluation: deterministic multi-file repositories whose commits
// apply realistic tree edits, standing in for the proprietary Python
// corpus of the paper's §6. It is the public face of internal/corpus.
package corpus

import "repro/internal/corpus"

type (
	// Options configures corpus generation; History is the generated
	// repository; Commit and FileChange are its history entries.
	Options    = corpus.Options
	History    = corpus.History
	Commit     = corpus.Commit
	FileChange = corpus.FileChange
	// EditKind labels the tree edit a change applied.
	EditKind = corpus.EditKind
)

// DefaultOptions mirrors the corpus shape of the paper's evaluation.
func DefaultOptions() Options { return corpus.DefaultOptions() }

// Generate deterministically generates a version history.
func Generate(opts Options) *History { return corpus.Generate(opts) }

// RenderChange renders a file change's before and after sources.
func RenderChange(fc FileChange) (before, after string) { return corpus.RenderChange(fc) }
