package structdiff

// This file re-exports the data model of the internal packages as type
// aliases, so applications can hold, build, and inspect every value the
// facade produces without importing internal/... paths. Aliases (not
// definitions) are used deliberately: values flow between the facade and
// the internal packages with no conversions, and methods stay attached.

import (
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// --- Trees (internal/tree, internal/uri) --------------------------------

type (
	// Node is an immutable hashed tree node (paper §4: every subtree
	// carries its structure and literal digests).
	Node = tree.Node
	// Builder constructs schema-validated trees.
	Builder = tree.Builder
	// HashKind selects the subtree hash algorithm.
	HashKind = tree.HashKind
	// DigestMemo caches subtree digests across trees (used by Engine).
	DigestMemo = tree.DigestMemo
	// URI identifies a node stably across edits.
	URI = uri.URI
	// Allocator hands out fresh URIs.
	Allocator = uri.Allocator
)

const (
	// SHA256 is the paper's subtree hash.
	SHA256 = tree.SHA256
	// FNV64 is the fast non-cryptographic ablation hash.
	FNV64 = tree.FNV64
	// RootURI is the URI of the pre-defined root node.
	RootURI = uri.Root
)

// NewAllocator returns a fresh URI allocator.
func NewAllocator() *Allocator { return uri.NewAllocator() }

// NewBuilder returns a tree builder for the schema drawing URIs from
// alloc (nil for a fresh allocator).
func NewBuilder(sch *Schema, alloc *Allocator) *Builder {
	if alloc == nil {
		alloc = uri.NewAllocator()
	}
	return tree.NewBuilder(sch, alloc)
}

// NewTree builds a validated, hashed node (see Builder for bulk
// construction).
func NewTree(sch *Schema, alloc *Allocator, tag Tag, kids []*Node, lits []any) (*Node, error) {
	return tree.New(sch, alloc, tag, kids, lits)
}

// Clone deep-copies a tree with fresh URIs, recomputing its hashes.
func Clone(n *Node, alloc *Allocator, kind HashKind) *Node { return tree.Clone(n, alloc, kind) }

// CloneKeepDigests deep-copies a tree with fresh URIs, keeping its digests
// verbatim (digests never depend on URIs). Valid only when the tree already
// carries digests of the desired kind — check with HashedWith.
func CloneKeepDigests(n *Node, alloc *Allocator) *Node { return tree.CloneKeepDigests(n, alloc) }

// HashedWith reports whether a tree carries digests of the given kind.
func HashedWith(n *Node, kind HashKind) bool { return tree.HashedWith(n, kind) }

// Walk visits the tree pre-order; WalkPost visits it post-order.
func Walk(n *Node, f func(*Node))     { tree.Walk(n, f) }
func WalkPost(n *Node, f func(*Node)) { tree.WalkPost(n, f) }

// TreesEqual reports deep equality of trees including URIs.
func TreesEqual(a, b *Node) bool { return tree.Equal(a, b) }

// StructurallyEquivalent reports equality up to literals and URIs;
// LiterallyEquivalent additionally requires equal literals (paper §4.1).
func StructurallyEquivalent(a, b *Node) bool { return tree.StructurallyEquivalent(a, b) }
func LiterallyEquivalent(a, b *Node) bool    { return tree.LiterallyEquivalent(a, b) }

// --- Schemas (internal/sig) ---------------------------------------------

type (
	// Schema declares the sorts and signatures trees are typed against.
	Schema = sig.Schema
	// Sig is one constructor signature.
	Sig = sig.Sig
	// Tag names a constructor; Sort a syntactic category; Link a child or
	// literal position.
	Tag  = sig.Tag
	Sort = sig.Sort
	Link = sig.Link
	// KidSpec and LitSpec describe a signature's child and literal slots.
	KidSpec = sig.KidSpec
	LitSpec = sig.LitSpec
	// BaseType types literal values.
	BaseType = sig.BaseType
)

const (
	RootTag  = sig.RootTag
	RootLink = sig.RootLink
	AnySort  = sig.Any
)

const (
	AnyLit    = sig.AnyLit
	StringLit = sig.StringLit
	IntLit    = sig.IntLit
	FloatLit  = sig.FloatLit
	BoolLit   = sig.BoolLit
)

// NewSchema returns an empty schema with the given name.
func NewSchema(name string) *Schema { return sig.NewSchema(name) }

// --- Edit scripts (internal/truechange) ---------------------------------

type (
	// Script is a truechange edit script; Edit one of its edits.
	Script = truechange.Script
	Edit   = truechange.Edit
	// The five edit kinds of the paper's §3.
	Detach = truechange.Detach
	Attach = truechange.Attach
	Load   = truechange.Load
	Unload = truechange.Unload
	Update = truechange.Update
	// NodeRef, KidArg, and LitArg are the operands of edits.
	NodeRef = truechange.NodeRef
	KidArg  = truechange.KidArg
	LitArg  = truechange.LitArg
	// State is the linear typing context of the edit type system; Slot one
	// hole in it. TypeError reports a script that fails the type check.
	State     = truechange.State
	Slot      = truechange.Slot
	TypeError = truechange.TypeError
	// Stats is a per-kind breakdown of a script.
	Stats = truechange.Stats
)

// RootRef refers to the pre-defined root node.
var RootRef = truechange.RootRef

// WellTyped checks a script against the closed-to-closed typing judgement
// (scripts produced by Diff); WellTypedInit against the initializing one
// (scripts produced by InitialScript). Failures match ErrIllTyped.
func WellTyped(sch *Schema, s *Script) error     { return truechange.WellTyped(sch, s) }
func WellTypedInit(sch *Schema, s *Script) error { return truechange.WellTypedInit(sch, s) }

// CheckScript type-checks a script edit by edit starting from an explicit
// state, returning the TypeError of the first offending edit. CheckEdit
// checks a single edit, advancing the state in place.
func CheckScript(sch *Schema, s *Script, st *State) error { return truechange.Check(sch, s, st) }
func CheckEdit(sch *Schema, e Edit, st *State) error      { return truechange.CheckEdit(sch, e, st) }

// ClosedState and InitState are the canonical initial typing states.
func ClosedState() *State { return truechange.ClosedState() }
func InitState() *State   { return truechange.InitState() }

// ComputeStats analyzes a script into per-kind counts and the paper's
// compound (conciseness) metric.
func ComputeStats(s *Script) Stats { return truechange.ComputeStats(s) }

// Normalize, Invert, Compose, and Concat are the script algebra.
func Normalize(s *Script) *Script        { return truechange.Normalize(s) }
func Invert(s *Script) *Script           { return truechange.Invert(s) }
func Compose(scripts ...*Script) *Script { return truechange.Compose(scripts...) }
func Concat(scripts ...*Script) *Script  { return truechange.Concat(scripts...) }

// --- Mutable trees (internal/mtree) -------------------------------------

type (
	// MTree is the mutable, URI-indexed tree the standard semantics of
	// edit scripts operates on; MNode is its node type.
	MTree = mtree.MTree
	MNode = mtree.MNode
	// PatchError is the typed failure of a transactional patch: the
	// offending edit's index and kind, and whether already-applied edits
	// were rolled back. Matches ErrNonCompliantScript via errors.Is; see
	// Patch and PatchAtomic.
	PatchError = mtree.PatchError
)

// NewMTree returns an empty mutable tree (just the pre-defined root);
// MTreeFromTree converts an immutable tree.
func NewMTree(sch *Schema) *MTree { return mtree.New(sch) }
func MTreeFromTree(sch *Schema, t *Node) (*MTree, error) {
	return mtree.FromTree(sch, t)
}

// --- Diffing (internal/truediff) ----------------------------------------

type (
	// Differ computes edit scripts; Result carries a script and the
	// patched tree. Options and its enums configure the algorithm.
	Differ         = truediff.Differ
	Result         = truediff.Result
	DiffOptions    = truediff.Options
	EquivMode      = truediff.EquivMode
	SelectionOrder = truediff.SelectionOrder
	// Scratch is recyclable per-diff working state (see Differ.DiffScratch
	// and the Engine, which pools it).
	Scratch = truediff.Scratch
	// MatchPair feeds DiffWithMatching.
	MatchPair = truediff.MatchPair
)

const (
	StructuralWithLiteralPreference = truediff.StructuralWithLiteralPreference
	ExactOnly                       = truediff.ExactOnly
	StructuralNoPreference          = truediff.StructuralNoPreference
)

const (
	HighestFirst = truediff.HighestFirst
	FIFO         = truediff.FIFO
)

// NewScratch returns recyclable diffing scratch state for
// Differ.DiffScratch.
func NewScratch() *Scratch { return truediff.NewScratch() }

// --- Batch engine (internal/engine) -------------------------------------

type (
	// Engine diffs batches of tree pairs concurrently with pooled scratch
	// state and a cross-diff digest memo; see NewEngine.
	Engine = engine.Engine
	// EngineConfig is the engine's plain-struct configuration (NewEngine
	// assembles it from Options).
	EngineConfig = engine.Config
	// Pair is one diffing task; PairResult its outcome; DiffStats its
	// instrumentation.
	Pair       = engine.Pair
	PairResult = engine.PairResult
	DiffStats  = engine.DiffStats
	// Snapshot is a point-in-time view of an engine's cumulative metrics;
	// Snapshot.Sub derives per-batch deltas.
	Snapshot = engine.Snapshot
	// DiffEvent is the per-diff notification delivered to WithObserver and
	// WithSlowDiffLog callbacks.
	DiffEvent = engine.DiffEvent
	// FallbackMode selects the engine's graceful-degradation policy (see
	// WithFallback); PanicError is the typed error of a recovered per-diff
	// panic, matching ErrDiffPanic and carrying the goroutine stack.
	FallbackMode = engine.FallbackMode
	PanicError   = engine.PanicError
)

// The graceful-degradation policies of WithFallback.
const (
	FallbackNone        = engine.FallbackNone
	FallbackRootReplace = engine.FallbackRootReplace
)

// --- Fault injection (internal/faultinject) ------------------------------

type (
	// FaultInjector fires pre-armed deterministic faults at named sites
	// (see WithFaultInjection); Fault arms one, FaultKind selects what it
	// does.
	FaultInjector = faultinject.Injector
	Fault         = faultinject.Fault
	FaultKind     = faultinject.Kind
)

// The fault kinds an injector can fire.
const (
	FaultError = faultinject.Error
	FaultPanic = faultinject.Panic
	FaultDelay = faultinject.Delay
)

// The fault-injection sites the diffing pipeline exposes: once per diff
// inside the engine's panic-isolation boundary, on every cancellation
// checkpoint poll, and on every edit a transactional patch applies.
const (
	FaultSiteDiff       = engine.FaultSiteDiff
	FaultSiteCheckpoint = engine.FaultSiteCheckpoint
	FaultSiteEdit       = mtree.FaultSiteEdit
)

// NewFaultInjector returns an injector firing the given faults; a zero
// Fault.Prob fault fires deterministically by hit count (After, Times),
// a fractional one pseudo-randomly from the seed. See WithFaultInjection
// for the engine sites and MTree.InjectFaults for the patch site.
func NewFaultInjector(seed int64, faults ...Fault) *FaultInjector {
	return faultinject.New(seed, faults...)
}

// --- Telemetry (internal/telemetry) -------------------------------------

type (
	// Tracer receives span events for every diff (see WithTracer);
	// TracerFuncs adapts plain functions into one.
	Tracer      = telemetry.Tracer
	TracerFuncs = telemetry.TracerFuncs
	// Phase identifies one of the four truediff steps; PhaseTimes holds
	// one diff's per-phase durations.
	Phase      = telemetry.Phase
	PhaseTimes = telemetry.PhaseTimes
	// Histogram is the lock-free log-bucketed histogram the engine
	// aggregates latencies into; HistogramSnapshot is its point-in-time
	// view (Mean, Quantile).
	Histogram         = telemetry.Histogram
	HistogramSnapshot = telemetry.HistogramSnapshot
	// Metric is one exposition sample; Gatherer is anything that reports
	// them (an Engine is one); MetricsHandler serves a Gatherer over HTTP.
	Metric   = telemetry.Metric
	Gatherer = telemetry.Gatherer
	// TraceRecord is one line of the JSONL diff trace; TraceWriter is the
	// concurrency-safe sink (see NewTraceWriter).
	TraceRecord = telemetry.TraceRecord
	TraceWriter = telemetry.TraceWriter
)

// The four truediff phases, in execution order.
const (
	PhasePrepare = telemetry.PhasePrepare
	PhaseShares  = telemetry.PhaseShares
	PhaseSelect  = telemetry.PhaseSelect
	PhaseEmit    = telemetry.PhaseEmit
	NumPhases    = telemetry.NumPhases
)
