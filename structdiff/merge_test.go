package structdiff_test

import (
	"context"
	"errors"
	"testing"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

// TestMergeFacade drives the public three-way merge entry points end to
// end: a disjoint pair merges clean and applies, a competing pair fails
// typed under the default policy and resolves under WithMergePolicy, and
// ApplyMerge rolls back exactly when the acceptance hook rejects.
func TestMergeFacade(t *testing.T) {
	sch := exp.Schema()

	build := func(vals ...any) *structdiff.Node {
		b := exp.NewBuilder()
		mk := func(v any) *structdiff.Node {
			switch x := v.(type) {
			case int:
				return b.MustN("Num", x)
			case string:
				return b.MustN("Var", x)
			}
			t.Fatalf("bad leaf %v", v)
			return nil
		}
		return b.MustN("Add", mk(vals[0]), mk(vals[1]))
	}

	t.Run("disjoint", func(t *testing.T) {
		base := build(1, 2)
		res, err := structdiff.Merge(base, build(10, 2), build(1, 20),
			structdiff.WithSchema(sch))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Conflicts != 0 {
			t.Fatalf("disjoint merge reported conflicts: %+v", res.Stats)
		}
		if err := structdiff.WellTyped(sch, res.Script); err != nil {
			t.Fatalf("merged script ill-typed: %v", err)
		}
		mt, err := structdiff.MTreeFromTree(sch, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := structdiff.ApplyMerge(mt, res, nil); err != nil {
			t.Fatal(err)
		}
		if !mt.EqualTree(build(10, 20)) {
			t.Fatalf("merged tree mismatch: %s", mt)
		}
	})

	t.Run("conflict-and-policies", func(t *testing.T) {
		base := build(1, 2)
		ours, theirs := build("a", 2), build("b", 2)

		_, err := structdiff.MergeContext(context.Background(), base, ours, theirs,
			structdiff.WithSchema(sch))
		if !errors.Is(err, structdiff.ErrMergeConflict) {
			t.Fatalf("competing merge: %v, want ErrMergeConflict", err)
		}
		var ce *structdiff.MergeConflictError
		if !errors.As(err, &ce) || len(ce.Conflicts) == 0 {
			t.Fatalf("error %v carries no conflict list", err)
		}

		for _, pc := range []struct {
			policy structdiff.MergePolicy
			want   *structdiff.Node
		}{{structdiff.MergePolicyOurs, ours}, {structdiff.MergePolicyTheirs, theirs}} {
			res, err := structdiff.Merge(base, ours, theirs,
				structdiff.WithSchema(sch), structdiff.WithMergePolicy(pc.policy))
			if err != nil {
				t.Fatalf("%v: %v", pc.policy, err)
			}
			if len(res.Conflicts) == 0 {
				t.Fatalf("%v: resolved conflicts not recorded", pc.policy)
			}
			mt, err := structdiff.MTreeFromTree(sch, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := structdiff.ApplyMerge(mt, res, nil); err != nil {
				t.Fatal(err)
			}
			if !mt.EqualTree(pc.want) {
				t.Fatalf("%v: merged tree mismatch: %s", pc.policy, mt)
			}
		}
	})

	t.Run("apply-rollback", func(t *testing.T) {
		base := build(1, 2)
		res, err := structdiff.Merge(base, build(10, 2), build(1, 20),
			structdiff.WithSchema(sch))
		if err != nil {
			t.Fatal(err)
		}
		mt, err := structdiff.MTreeFromTree(sch, base)
		if err != nil {
			t.Fatal(err)
		}
		reject := errors.New("rejected by review")
		err = structdiff.ApplyMerge(mt, res, func(*structdiff.MTree) error { return reject })
		if !errors.Is(err, reject) {
			t.Fatalf("rejection not surfaced: %v", err)
		}
		if !mt.EqualTree(base) {
			t.Fatalf("rejected merge did not roll back: %s", mt)
		}
	})

	t.Run("scripts", func(t *testing.T) {
		base := build(1, 2)
		ra, err := structdiff.Diff(base, build(10, 2), structdiff.WithSchema(sch))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := structdiff.Diff(base, build(1, 20), structdiff.WithSchema(sch))
		if err != nil {
			t.Fatal(err)
		}
		res, err := structdiff.MergeScripts(base, ra.Script, rb.Script,
			structdiff.WithSchema(sch))
		if err != nil {
			t.Fatal(err)
		}
		mt, err := structdiff.MTreeFromTree(sch, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := structdiff.PatchAtomic(mt, res.Script); err != nil {
			t.Fatal(err)
		}
		if !mt.EqualTree(build(10, 20)) {
			t.Fatalf("script-level merged tree mismatch: %s", mt)
		}
	})

	t.Run("no-schema", func(t *testing.T) {
		if _, err := structdiff.Merge(build(1, 2), build(1, 2), build(1, 2)); !errors.Is(err, structdiff.ErrNoSchema) {
			t.Fatalf("schemaless merge: %v, want ErrNoSchema", err)
		}
	})
}
