// Package structdiff is the public interface of this repository's
// reproduction of "Concise, Type-Safe, and Efficient Structural Diffing"
// (Erdweg, Szabó, Pacak; PLDI 2021). It is the single supported entry
// point: everything an application needs — building typed trees, diffing
// them into truechange edit scripts, patching trees, type-checking
// scripts, and running corpus-scale batches through the concurrent engine
// — is exported here or in a subpackage (langs/..., corpus, evaluation,
// baselines/..., analysis). The internal/... packages remain importable
// only by this module and may change shape without notice.
//
// # Quick start
//
//	sch := exp.Schema()                  // structdiff/langs/exp
//	b := exp.NewBuilder()
//	one, _ := b.N("Num", int64(1))
//	two, _ := b.N("Num", int64(2))
//	res, err := structdiff.Diff(one, two, structdiff.WithSchema(sch))
//	// res.Script is the edit script, res.Patched the patched tree.
//
// # Batch diffing
//
// For many diffs over one schema, create an Engine: it fans batches over a
// worker pool, recycles per-diff scratch state, and memoizes subtree
// digests across diffs. See NewEngine and docs/API.md.
package structdiff

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/merge"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Option configures Diff, Patch, NewDiffer, and NewEngine. Options that do
// not apply to a call are ignored, so one option slice can be shared.
type Option func(*config)

type config struct {
	sch      *sig.Schema
	alloc    *uri.Allocator
	diff     truediff.Options
	hash     tree.HashKind
	workers  int
	noMemo   bool
	observer func(DiffEvent)
	slow     time.Duration
	slowLog  func(DiffEvent)
	timeout  time.Duration
	fallback FallbackMode
	faults   *faultinject.Injector
	spans    telemetry.SpanSink
	logger   *slog.Logger
	slo      telemetry.SLOConfig
	merge    merge.Policy
	explain  bool
	qbase    int
}

func newConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithSchema sets the schema the trees are typed against. Diff, Patch, and
// InitialScript require it.
func WithSchema(sch *Schema) Option { return func(c *config) { c.sch = sch } }

// WithAllocator supplies the URI allocator fresh URIs are drawn from. It
// must dominate every URI of the (source) tree; pass the allocator the
// tree was built with. Without it, an allocator is derived by reserving
// the source tree's URIs.
func WithAllocator(a *Allocator) Option { return func(c *config) { c.alloc = a } }

// WithEquivalence selects the subtree equivalence mode used to find reuse
// candidates (default StructuralWithLiteralPreference, the paper's choice).
func WithEquivalence(m EquivMode) Option { return func(c *config) { c.diff.Equiv = m } }

// WithSelectionOrder selects the candidate selection order (default
// HighestFirst, the paper's choice).
func WithSelectionOrder(o SelectionOrder) Option { return func(c *config) { c.diff.Order = o } }

// WithUpdateOnLitMismatch lets the edit-computation traversal continue
// across equal-tagged nodes whose literals differ, emitting updates
// instead of replacing the subtree (an ablation of the paper's algorithm).
func WithUpdateOnLitMismatch() Option { return func(c *config) { c.diff.UpdateOnLitMismatch = true } }

// WithHashKind selects the subtree hash for trees ingested by an Engine
// (default SHA256, the paper's choice).
func WithHashKind(k HashKind) Option { return func(c *config) { c.hash = k } }

// WithWorkers bounds the goroutines an Engine fans a batch over (default:
// one per CPU).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithoutMemo disables an Engine's cross-diff digest memo (for ablation
// measurements; the memo is on by default).
func WithoutMemo() Option { return func(c *config) { c.noMemo = true } }

// WithTracer attaches a telemetry tracer: every diff emits BeginDiff, one
// Phase event per truediff step (prepare, shares, select, emit) in order,
// and EndDiff. It applies to Diff, NewDiffer, and NewEngine; with an
// engine running Workers > 1 the tracer observes diffs from several
// goroutines at once, so it must be concurrency-safe. See
// docs/OBSERVABILITY.md.
func WithTracer(t Tracer) Option { return func(c *config) { c.diff.Tracer = t } }

// WithObserver registers a per-diff callback on an Engine: after every
// diff (successful, failed, or short-circuited) the observer receives a
// DiffEvent with the pair's label, stats (including the per-phase
// breakdown), and error. It runs synchronously on worker goroutines; keep
// it cheap and concurrency-safe. Engine entry points only.
func WithObserver(fn func(DiffEvent)) Option { return func(c *config) { c.observer = fn } }

// WithSlowDiffThreshold enables slow-diff logging on an Engine: completed
// diffs whose wall time meets or exceeds d are counted (Snapshot.SlowDiffs)
// and reported — through log, the logger's default destination, unless a
// custom sink is given via WithSlowDiffLog. Engine entry points only.
func WithSlowDiffThreshold(d time.Duration) Option { return func(c *config) { c.slow = d } }

// WithSlowDiffLog overrides where slow diffs are reported (default: the
// standard library logger). Only meaningful with WithSlowDiffThreshold.
func WithSlowDiffLog(fn func(DiffEvent)) Option { return func(c *config) { c.slowLog = fn } }

// WithDiffTimeout bounds each individual diff an Engine runs: a diff still
// running when its deadline passes aborts at the next cancellation
// checkpoint with an error matching ErrDiffTimeout. The deadline starts
// when the diff starts — it bounds pairs, not batches, so large batches do
// not starve late pairs. Combine with WithFallback to degrade instead of
// fail. Engine entry points only; zero disables the deadline.
func WithDiffTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithCheckpointEvery tunes how many nodes a diff processes between
// cancellation-checkpoint polls (default truediff.DefaultCheckpointEvery).
// Smaller values abort faster after a cancellation or deadline at slightly
// higher overhead.
func WithCheckpointEvery(n int) Option { return func(c *config) { c.diff.CheckpointEvery = n } }

// WithFallback selects an Engine's graceful-degradation policy: under
// FallbackRootReplace, a pair whose diff panics, exceeds WithDiffTimeout,
// or emits an ill-typed script is served a synthesized root-replacement
// script — maximally verbose, but well-typed by construction and
// guaranteed to patch source into target. Degraded pairs are flagged in
// DiffStats.Fallback and counted in Snapshot.Fallbacks. Engine entry
// points only; the default (FallbackNone) propagates failures.
func WithFallback(m FallbackMode) Option { return func(c *config) { c.fallback = m } }

// WithProfileLabels turns on self-profiling instrumentation: every diff
// becomes a runtime/trace task ("truediff.diff"), each of the four truediff
// phases runs under a pprof label (phase=prepare|shares|select|emit) and a
// matching trace region ("truediff/<phase>"), and an Engine additionally
// labels worker goroutines (worker=<n>) and individual pairs (pair=<label>).
// CPU profiles then decompose by phase and pair (go tool pprof -tagfocus),
// and execution traces show per-diff tasks with nested phase regions (go
// tool trace). Off by default: the unprofiled path touches no context or
// label machinery, so there is no overhead unless this option is given.
// See docs/OBSERVABILITY.md.
func WithProfileLabels() Option { return func(c *config) { c.diff.ProfileLabels = true } }

// WithSpans enables distributed tracing: completed spans are delivered to
// sink. DiffContext records one "structdiff.diff" span per call with the
// four truediff phases as children; an Engine records one "engine.diff"
// span per pair (parented on Pair.Trace when set) with the phases nested
// under it. The parent for a facade diff is taken from the context
// (WithTraceContext), so client-side spans join server traces. Tracing is
// off — and costs nothing — without this option. See docs/TRACING.md.
func WithSpans(sink SpanSink) Option { return func(c *config) { c.spans = sink } }

// WithLogger routes an Engine's structured diagnostics — slow diffs,
// failures, fallback rescues — through a log/slog logger instead of the
// standard library's plain logger. Records carry the pair label, timing,
// sizes, and trace_id/span_id correlation when tracing is on. Engine
// entry points only.
func WithLogger(l *slog.Logger) Option { return func(c *config) { c.logger = l } }

// WithSLO overrides an Engine's rolling-window service-level objectives
// (window length, latency objective, availability and attainment targets;
// zero fields take the defaults documented on SLOConfig). The evaluation
// surfaces in Snapshot.SLO, Snapshot.String(), and the structdiff_slo_*
// gauges. Engine entry points only.
func WithSLO(cfg SLOConfig) Option { return func(c *config) { c.slo = cfg } }

// WithFaultInjection arms deterministic fault injection on an Engine: the
// injector's faults fire at the engine's sites (FaultSiteDiff on every
// diff, FaultSiteCheckpoint on every checkpoint poll). Intended for
// resilience tests and failure-path rehearsal; see NewFaultInjector.
func WithFaultInjection(inj *FaultInjector) Option { return func(c *config) { c.faults = inj } }

// Diff computes the truechange edit script that transforms src into dst,
// together with the patched tree. WithSchema is required; WithAllocator,
// WithEquivalence, WithSelectionOrder, and WithUpdateOnLitMismatch apply.
// It is DiffContext with a background context; callers that may need to
// abandon a diff should call DiffContext instead.
//
// Failures are reported via the package's sentinel errors: ErrNoSchema,
// ErrNilTree, ErrSchemaMismatch.
func Diff(src, dst *Node, opts ...Option) (*Result, error) {
	return DiffContext(context.Background(), src, dst, opts...)
}

// DiffContext is the context-first form of Diff: the diff polls ctx at
// cancellation checkpoints (every WithCheckpointEvery nodes) and aborts
// mid-phase once it is done, returning the cancellation cause. A
// WithDiffTimeout deadline applies here too — it starts when the diff
// starts and surfaces as ErrDiffTimeout, distinct from ctx's own deadline
// (context.DeadlineExceeded) — so cancellation no longer requires an
// Engine. A nil ctx is treated as context.Background(), under which (and
// without WithDiffTimeout) DiffContext is exactly Diff.
func DiffContext(ctx context.Context, src, dst *Node, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.spans != nil {
		span := telemetry.StartSpan(cfg.spans, telemetry.SpanContextFromContext(ctx), "structdiff.diff")
		defer span.End()
		ctx = telemetry.ContextWithTracer(ctx, telemetry.PhaseSpans(cfg.spans, span.Context()))
	}
	d := truediff.NewWithOptions(cfg.sch, cfg.diff)
	return d.DiffScratchProfiled(ctx, src, dst, cfg.alloc, truediff.NewScratch(), ctxCheckpoint(ctx, cfg.timeout))
}

// WithTraceContext returns a context carrying sc as the parent for spans
// opened under it: DiffContext's facade span and a ServiceClient's RPC
// spans parent themselves on sc, joining the caller's trace. Retrieve a
// context's trace with TraceContextFrom.
func WithTraceContext(ctx context.Context, sc SpanContext) context.Context {
	return telemetry.ContextWithSpanContext(ctx, sc)
}

// TraceContextFrom extracts the trace context carried by ctx (the zero,
// invalid SpanContext when none is set).
func TraceContextFrom(ctx context.Context) SpanContext {
	return telemetry.SpanContextFromContext(ctx)
}

// ctxCheckpoint builds the cooperative-cancellation hook for one facade
// diff, or nil when nothing could interrupt it (no cancellable context, no
// per-diff timeout) so the differ keeps its unchecked fast path. Mirrors
// the engine's per-pair checkpoint: the deadline is fixed when the diff
// starts and surfaces as ErrDiffTimeout.
func ctxCheckpoint(ctx context.Context, timeout time.Duration) truediff.Checkpoint {
	done := ctx.Done()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if done == nil && deadline.IsZero() {
		return nil
	}
	return func() error {
		select {
		case <-done: // never ready when done is nil
			return context.Cause(ctx)
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("structdiff: %w (limit %v)", ErrDiffTimeout, timeout)
		}
		return nil
	}
}

// InitialScript returns a well-typed initializing edit script that builds
// target from the empty tree. WithSchema is required.
func InitialScript(target *Node, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	return truediff.NewWithOptions(cfg.sch, cfg.diff).InitialScript(target, cfg.alloc)
}

// DiffWithMatching generates a well-typed script realizing an externally
// computed node matching (for example from baselines/gumtree.MatchTyped)
// instead of truediff's own subtree assignment. WithSchema is required;
// a matching that is not one-to-one yields ErrBadMatching.
func DiffWithMatching(src, dst *Node, matches []MatchPair, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	return truediff.NewWithOptions(cfg.sch, cfg.diff).DiffWithMatching(src, dst, matches, cfg.alloc)
}

// Patch applies the edit script to the tree and returns the patched tree.
// The input tree is not mutated. WithSchema is required; WithAllocator
// supplies URIs for the rebuilt tree (defaulting to a fresh allocator that
// learns the tree's URIs).
//
// The script must comply with the tree (Definition 3.5 of the paper): an
// edit that does not — wrong URIs, tags, links, stale literal values —
// fails with an error matching ErrNonCompliantScript (a *PatchError
// carrying the offending edit's index and kind), and scripts from Diff
// always comply with Diff's source tree. Patching is transactional: the
// script applies in full or not at all, so a failure never leaks a
// half-patched state (here that is invisible — the input tree is copied —
// but the same guarantee holds for in-place patching via PatchAtomic).
func Patch(t *Node, s *Script, opts ...Option) (*Node, error) {
	return PatchContext(context.Background(), t, s, opts...)
}

// PatchContext is the context-first form of Patch. Patching a truechange
// script is O(change), not O(tree), so unlike diffing it has no mid-run
// checkpoints: ctx is observed on entry (a cancelled context fails before
// any edit applies, preserving transactionality) and a nil ctx is treated
// as context.Background(), under which PatchContext is exactly Patch.
func PatchContext(ctx context.Context, t *Node, s *Script, opts ...Option) (*Node, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	if t == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNilTree)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("structdiff: %w", err)
		}
	}
	mt, err := mtree.FromTree(cfg.sch, t)
	if err != nil {
		return nil, err
	}
	if err := mt.Patch(s); err != nil {
		// mtree's PatchError already carries ErrNonCompliantScript; a
		// second wrap here would make errors.Is matches ambiguous to read.
		return nil, fmt.Errorf("structdiff: %w", err)
	}
	alloc := cfg.alloc
	if alloc == nil {
		alloc = uri.NewAllocator()
		tree.Walk(t, func(n *Node) { alloc.Reserve(n.URI) })
	}
	return mt.ToTree(alloc)
}

// PatchAtomic applies the edit script to a mutable tree in place,
// transactionally: either every edit applies and nil is returned, or the
// first failing edit aborts the patch, every already-applied edit is
// rolled back (restoring mt to exactly its pre-call state, same nodes and
// all), and the returned error — a *PatchError matching
// ErrNonCompliantScript — reports the offending edit's index and kind and
// whether a rollback happened. Rollbacks are counted in
// Snapshot.Rollbacks.
//
// Use this over Patch when the caller owns a long-lived MTree (for
// example, replaying a version history) and cannot afford either the
// per-patch tree conversion or a corrupted tree on a bad script.
func PatchAtomic(mt *MTree, s *Script) error {
	if mt == nil {
		return fmt.Errorf("structdiff: %w", ErrNilTree)
	}
	if err := mt.Patch(s); err != nil {
		return fmt.Errorf("structdiff: %w", err)
	}
	return nil
}

// NewDiffer returns a reusable differ for the schema, honouring
// WithEquivalence, WithSelectionOrder, and WithUpdateOnLitMismatch. The
// differ is immutable and safe for concurrent use.
func NewDiffer(sch *Schema, opts ...Option) *Differ {
	cfg := newConfig(opts)
	return truediff.NewWithOptions(sch, cfg.diff)
}

// NewEngine returns a concurrent batch diffing engine for trees of the
// schema, honouring WithWorkers, WithHashKind, WithoutMemo, and the diff
// options. See the Engine type (internal/engine re-exported here) for the
// batch API and Snapshot for its metrics.
func NewEngine(sch *Schema, opts ...Option) (*Engine, error) {
	if sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	cfg := newConfig(opts)
	return engine.New(sch, engine.Config{
		Workers:           cfg.workers,
		Diff:              cfg.diff,
		Hash:              cfg.hash,
		DisableMemo:       cfg.noMemo,
		Observer:          cfg.observer,
		SlowDiffThreshold: cfg.slow,
		SlowDiffLog:       cfg.slowLog,
		DiffTimeout:       cfg.timeout,
		Fallback:          cfg.fallback,
		Faults:            cfg.faults,
		Spans:             cfg.spans,
		Logger:            cfg.logger,
		SLO:               cfg.slo,
		Explain:           cfg.explain,
		QualityBaseline:   cfg.qbase,
	}), nil
}

// MetricsHandler returns the observability endpoint for an Engine (or any
// Gatherer): /metrics in Prometheus text format, /debug/vars (expvar), and
// /debug/pprof. Mount it on its own listener — cmd/evaluate and
// cmd/truediff expose it via -metrics-addr — or under a route of an
// existing server. See docs/OBSERVABILITY.md for the metric inventory.
func MetricsHandler(g Gatherer) http.Handler { return telemetry.Handler(g) }

// NewTraceWriter returns a concurrency-safe JSONL sink for per-diff trace
// records; wire it to an engine with
// WithObserver(func(ev DiffEvent) { tw.Write(ev.TraceRecord()) }).
func NewTraceWriter(w io.Writer) *TraceWriter { return telemetry.NewTraceWriter(w) }

// DiffBatch is a convenience wrapper: it builds a one-shot engine, runs
// the pairs through it, and closes it on every path — success, batch
// error, and engine construction failure alike — so the one-shot engine's
// intern store and scratch state never outlive the call. Applications
// running more than one batch should keep an Engine (NewEngine) so scratch
// state and the digest memo carry over between batches, and Close it when
// done.
func DiffBatch(ctx context.Context, sch *Schema, pairs []Pair, opts ...Option) ([]PairResult, error) {
	e, err := NewEngine(sch, opts...)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.DiffBatch(ctx, pairs)
}
