package structdiff_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/structdiff"
	"repro/structdiff/langs/exp"
)

// TestFacadeFallbackOnInjectedPanic drives the full degradation path
// through the public surface only: a fault injector armed at the diff site
// panics one pair, WithFallback rescues it with a root-replacement script
// that patches cleanly, and the engine's snapshot accounts for both the
// panic and the fallback.
func TestFacadeFallbackOnInjectedPanic(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	inj := structdiff.NewFaultInjector(1, structdiff.Fault{
		Site: structdiff.FaultSiteDiff, Kind: structdiff.FaultPanic, Times: 1,
	})
	e, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(1),
		structdiff.WithFallback(structdiff.FallbackRootReplace),
		structdiff.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.DiffBatch(context.Background(), []structdiff.Pair{
		{Source: src, Target: dst, Alloc: alloc, Label: "poisoned"},
	})
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	pr := results[0]
	if pr.Err != nil {
		t.Fatalf("pair failed despite fallback: %v", pr.Err)
	}
	if !pr.Stats.Fallback {
		t.Fatal("pair not flagged as fallback")
	}
	if err := structdiff.WellTyped(sch, pr.Result.Script); err != nil {
		t.Fatalf("fallback script ill-typed: %v", err)
	}
	patched, err := structdiff.Patch(src, pr.Result.Script, structdiff.WithSchema(sch))
	if err != nil {
		t.Fatalf("patching fallback script: %v", err)
	}
	if !structdiff.StructurallyEquivalent(patched, dst) || !structdiff.LiterallyEquivalent(patched, dst) {
		t.Error("fallback patch does not produce the target")
	}
	s := e.Snapshot()
	if s.Panics != 1 || s.Fallbacks != 1 {
		t.Errorf("Snapshot panics/fallbacks = %d/%d, want 1/1", s.Panics, s.Fallbacks)
	}
}

// TestFacadeDiffTimeout: a per-diff deadline armed through the facade
// surfaces as ErrDiffTimeout (without fallback).
func TestFacadeDiffTimeout(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	inj := structdiff.NewFaultInjector(1, structdiff.Fault{
		Site: structdiff.FaultSiteCheckpoint, Kind: structdiff.FaultDelay,
		Delay: 20 * time.Millisecond, Times: 1,
	})
	e, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(1),
		structdiff.WithDiffTimeout(time.Millisecond),
		structdiff.WithCheckpointEvery(1),
		structdiff.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Diff(context.Background(), src, dst, alloc)
	if !errors.Is(err, structdiff.ErrDiffTimeout) {
		t.Fatalf("Diff = %v, want ErrDiffTimeout", err)
	}
	if s := e.Snapshot(); s.Timeouts != 1 {
		t.Errorf("Snapshot.Timeouts = %d, want 1", s.Timeouts)
	}
}

// TestPatchAtomicRollsBack: a bad script leaves an in-place-patched MTree
// untouched, and the error carries the typed PatchError detail.
func TestPatchAtomicRollsBack(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := structdiff.MTreeFromTree(sch, src)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the script: append an edit referencing a URI the tree will
	// never contain.
	bad := &structdiff.Script{Edits: append(append([]structdiff.Edit{}, res.Script.Edits...),
		structdiff.Unload{Node: structdiff.NodeRef{Tag: "Num", URI: 1 << 40}})}
	err = structdiff.PatchAtomic(mt, bad)
	if err == nil {
		t.Fatal("PatchAtomic accepted a corrupt script")
	}
	if !errors.Is(err, structdiff.ErrNonCompliantScript) {
		t.Errorf("error %v does not match ErrNonCompliantScript", err)
	}
	var pe *structdiff.PatchError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not carry a *PatchError", err)
	}
	if pe.EditIndex != len(res.Script.Edits) || pe.Op != "unload" || !pe.RolledBack {
		t.Errorf("PatchError = edit #%d (%s, rolledBack=%v), want edit #%d (unload, rolled back)",
			pe.EditIndex, pe.Op, pe.RolledBack, len(res.Script.Edits))
	}

	// The tree is untouched: the uncorrupted script still applies in full.
	if err := structdiff.PatchAtomic(mt, res.Script); err != nil {
		t.Fatalf("valid script failed after rollback: %v", err)
	}
}

// TestPatchSingleWrap: the Patch facade no longer double-wraps — the error
// chain carries ErrNonCompliantScript exactly once, via PatchError.
func TestPatchSingleWrap(t *testing.T) {
	src, _, sch, _ := buildPair(t)
	bad := &structdiff.Script{Edits: []structdiff.Edit{
		structdiff.Unload{Node: structdiff.NodeRef{Tag: "Num", URI: 1 << 40}},
	}}
	_, err := structdiff.Patch(src, bad, structdiff.WithSchema(sch))
	if !errors.Is(err, structdiff.ErrNonCompliantScript) {
		t.Fatalf("Patch error %v does not match ErrNonCompliantScript", err)
	}
	var pe *structdiff.PatchError
	if !errors.As(err, &pe) {
		t.Fatalf("Patch error %T does not carry a *PatchError", err)
	}
}

// TestFacadeFaultInjectionAtEdit: the patch-site injector is reachable
// through the facade's MTree alias.
func TestFacadeFaultInjectionAtEdit(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := structdiff.MTreeFromTree(sch, src)
	if err != nil {
		t.Fatal(err)
	}
	mt.InjectFaults(structdiff.NewFaultInjector(1, structdiff.Fault{
		Site: structdiff.FaultSiteEdit, Kind: structdiff.FaultError, Times: 1,
	}))
	err = structdiff.PatchAtomic(mt, res.Script)
	if !errors.Is(err, structdiff.ErrFaultInjected) {
		t.Fatalf("PatchAtomic = %v, want ErrFaultInjected", err)
	}
	// Fault exhausted; the rollback restored the tree, so the same script
	// now applies.
	if err := structdiff.PatchAtomic(mt, res.Script); err != nil {
		t.Fatalf("patch after fault exhausted: %v", err)
	}
}

// TestPatchAtomicNilTree pins the nil-input contract.
func TestPatchAtomicNilTree(t *testing.T) {
	if err := structdiff.PatchAtomic(nil, &structdiff.Script{}); !errors.Is(err, structdiff.ErrNilTree) {
		t.Fatalf("PatchAtomic(nil) = %v, want ErrNilTree", err)
	}
}

// TestExpSchemaName guards the test's literal "Num" tag against schema
// drift: the corrupt-script tests above reference it by name.
func TestExpSchemaName(t *testing.T) {
	g := exp.NewGen(1)
	if g.Schema().Lookup("Num") == nil {
		t.Fatal("exp schema no longer declares Num; update resilience tests")
	}
}

// TestFacadeClientResilience drives the client-resilience options through
// the public surface only: a retrying client converges on a drained
// service with a typed ErrServiceUnavailable in bounded attempts, and a
// breaker-armed client refuses further calls with ErrCircuitOpen once the
// endpoint's failure rate trips.
func TestFacadeClientResilience(t *testing.T) {
	src, dst, sch, _ := buildPair(t)
	srv, err := structdiff.NewServiceServer(structdiff.ServiceConfig{
		Langs: []string{"exp"}, Workers: 1,
	})
	if err != nil {
		t.Fatalf("NewServiceServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	c := structdiff.NewServiceClient(hs.URL, "exp", sch,
		structdiff.WithRetryPolicy(structdiff.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Seed:        1,
		}),
		structdiff.WithCircuitBreaker(structdiff.CircuitBreakerConfig{
			MinRequests:  3,
			FailureRatio: 0.5,
			OpenFor:      time.Minute,
		}),
		structdiff.WithHedging(structdiff.HedgingConfig{Delay: time.Second}),
	)
	defer c.Close()

	// Every attempt is refused by the draining server; the retry policy
	// bounds the attempts and surfaces the typed sentinel.
	if _, err := c.Diff(context.Background(), src, dst, nil); !errors.Is(err, structdiff.ErrServiceUnavailable) {
		t.Fatalf("Diff against drained server = %v, want ErrServiceUnavailable", err)
	}
	snap := c.ClientSnapshot()
	if snap.Attempts != 3 || snap.Retries != 2 {
		t.Fatalf("snapshot = %+v, want 3 attempts / 2 retries", snap)
	}

	// Three failures over a 3-request floor trip the breaker: the next
	// call fails fast locally without touching the wire.
	if _, err := c.Diff(context.Background(), src, dst, nil); !errors.Is(err, structdiff.ErrCircuitOpen) {
		t.Fatalf("Diff with tripped breaker = %v, want ErrCircuitOpen", err)
	}
	if got := c.ClientSnapshot().Attempts; got != snap.Attempts {
		t.Fatalf("breaker let an attempt through: %d attempts, want %d", got, snap.Attempts)
	}
}
