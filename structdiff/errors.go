package structdiff

import (
	"repro/internal/derrors"
	"repro/internal/faultinject"
)

// The package's failure modes are typed sentinel errors: every error
// returned by the facade (and by the internal packages underneath it)
// wraps exactly one of these, so callers branch with errors.Is instead of
// matching message strings. The dynamic context — which tag, which edit
// index, which URI — stays in the wrapping message.
var (
	// ErrNilTree reports a nil source or target tree.
	ErrNilTree = derrors.ErrNilTree
	// ErrNoSchema reports a facade call that requires WithSchema.
	ErrNoSchema = derrors.ErrNoSchema
	// ErrSchemaMismatch reports a tree using tags the schema does not
	// declare, i.e. a tree built against a different schema.
	ErrSchemaMismatch = derrors.ErrSchemaMismatch
	// ErrIllTyped reports an edit script rejected by truechange's linear
	// type system (WellTyped, WellTypedInit).
	ErrIllTyped = derrors.ErrIllTyped
	// ErrNonCompliantScript reports a script whose edits do not match the
	// tree they are applied to (Definition 3.5).
	ErrNonCompliantScript = derrors.ErrNonCompliantScript
	// ErrBadMatching reports a DiffWithMatching matching that is not
	// one-to-one.
	ErrBadMatching = derrors.ErrBadMatching
	// ErrDiffPanic reports a diff that panicked and was recovered by the
	// engine's worker isolation (the wrapping PanicError carries the
	// recovered value and stack); the pair fails alone, the batch
	// completes.
	ErrDiffPanic = derrors.ErrDiffPanic
	// ErrDiffTimeout reports a diff aborted because it exceeded the
	// per-diff deadline (WithDiffTimeout). Distinct from the caller's
	// context deadline, which surfaces as context.DeadlineExceeded.
	ErrDiffTimeout = derrors.ErrDiffTimeout
	// ErrEngineClosed reports a Diff or DiffBatch call on an Engine whose
	// Close has begun.
	ErrEngineClosed = derrors.ErrEngineClosed
	// ErrServiceUnavailable reports a diff-service request rejected by
	// admission control — the server is saturated (HTTP 429; retry after
	// the advertised delay) or draining for shutdown (HTTP 503) — or a
	// transport-level failure a retrying client (WithRetryPolicy) may
	// transparently recover from.
	ErrServiceUnavailable = derrors.ErrServiceUnavailable
	// ErrMergeConflict reports a three-way merge (Merge, MergeContext,
	// MergeScripts) whose two edit scripts claim the same node or slot in
	// incompatible ways under MergePolicyFail. The wrapping
	// *MergeConflictError carries the full conflict list.
	ErrMergeConflict = derrors.ErrMergeConflict
	// ErrCircuitOpen reports a diff-service call refused locally by the
	// client's circuit breaker (WithCircuitBreaker): the endpoint's recent
	// failure rate tripped the breaker and the request was never sent.
	ErrCircuitOpen = derrors.ErrCircuitOpen
	// ErrFaultInjected reports a failure fired by a test-only fault
	// injector (WithFaultInjection), never a production failure.
	ErrFaultInjected = faultinject.ErrInjected
)
