package structdiff

import (
	"context"
	"fmt"

	"repro/internal/merge"
	"repro/internal/telemetry"
)

// Three-way merge: given an ancestor tree and two divergent descendants,
// Merge diffs ancestor→ours and ancestor→theirs and composes the two edit
// scripts into one well-typed script over the ancestor. Conflict detection
// is derived from the truechange linear type system — two changes conflict
// exactly when their typing claims on the ancestor intersect (same slot
// emptied, same node updated, edits inside a deleted subtree) — never from
// tree heuristics. See docs/MERGE.md for the algorithm and the conflict
// taxonomy.

// MergePolicy selects what happens to conflicting changes.
type MergePolicy = merge.Policy

const (
	// MergePolicyFail reports conflicts as a *MergeConflictError
	// (ErrMergeConflict) and merges nothing.
	MergePolicyFail MergePolicy = merge.PolicyFail
	// MergePolicyOurs resolves every conflict by keeping ours' change.
	MergePolicyOurs MergePolicy = merge.PolicyOurs
	// MergePolicyTheirs resolves every conflict by keeping theirs' change.
	MergePolicyTheirs MergePolicy = merge.PolicyTheirs
)

// ParseMergePolicy parses "fail", "ours", or "theirs" (CLI flag values).
func ParseMergePolicy(s string) (MergePolicy, error) { return merge.ParsePolicy(s) }

// MergeConflictKind classifies a conflict by the contended typing resource.
type MergeConflictKind = merge.ConflictKind

const (
	// MergeConflictSlot: both sides empty and refill the same child slot.
	MergeConflictSlot MergeConflictKind = merge.ConflictSlot
	// MergeConflictUpdateUpdate: both sides rewrite the same node's
	// literals.
	MergeConflictUpdateUpdate MergeConflictKind = merge.ConflictUpdateUpdate
	// MergeConflictUpdateDelete: one side updates a node the other
	// deletes.
	MergeConflictUpdateDelete MergeConflictKind = merge.ConflictUpdateDelete
	// MergeConflictDeleteEdit: one side edits a slot inside a subtree the
	// other deletes.
	MergeConflictDeleteEdit MergeConflictKind = merge.ConflictDeleteEdit
	// MergeConflictDeleteDelete: both sides delete the same node with
	// different surrounding changes.
	MergeConflictDeleteDelete MergeConflictKind = merge.ConflictDeleteDelete
	// MergeConflictCycle: the two sides move subtrees under each other,
	// which would orphan both; caught by the post-merge closure check.
	MergeConflictCycle MergeConflictKind = merge.ConflictCycle
)

// MergeConflict is one contended node or slot and the two competing edit
// groups (each a well-typed excerpt of its script).
type MergeConflict = merge.Conflict

// MergeConflictError is the error returned by a conflicting merge under
// MergePolicyFail; it unwraps to ErrMergeConflict and carries the full
// conflict list.
type MergeConflictError = merge.ConflictError

// MergeStats summarizes a merge (edit and group counts per side,
// conflicts, auto-resolutions, dropped edits).
type MergeStats = merge.Stats

// MergeResult is a successful merge: the composed well-typed script over
// the ancestor, the conflicts the policy resolved (always empty under
// MergePolicyFail), and summary statistics.
type MergeResult = merge.Result

// WithMergePolicy sets the conflict resolution policy for Merge,
// MergeContext, and MergeScripts. The default is MergePolicyFail.
func WithMergePolicy(p MergePolicy) Option { return func(c *config) { c.merge = p } }

// Merge three-way merges ours and theirs against their common ancestor
// base, returning a well-typed script over base that carries both sides'
// changes. WithSchema is required; WithAllocator, the diff options, and
// WithMergePolicy apply. Under the default MergePolicyFail a conflict
// surfaces as ErrMergeConflict carrying a *MergeConflictError; under
// MergePolicyOurs/MergePolicyTheirs conflicts are resolved and recorded in
// MergeResult.Conflicts. Changes both sides made identically are
// auto-resolved to a single copy and never count as conflicts.
func Merge(base, ours, theirs *Node, opts ...Option) (*MergeResult, error) {
	return MergeContext(context.Background(), base, ours, theirs, opts...)
}

// MergeContext is the context-first form of Merge: the two underlying
// diffs poll ctx at cancellation checkpoints. A nil ctx is treated as
// context.Background().
func MergeContext(ctx context.Context, base, ours, theirs *Node, opts ...Option) (*MergeResult, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.spans != nil {
		span := telemetry.StartSpan(cfg.spans, telemetry.SpanContextFromContext(ctx), "structdiff.merge")
		defer span.End()
		ctx = telemetry.ContextWithTracer(ctx, telemetry.PhaseSpans(cfg.spans, span.Context()))
	}
	return merge.Trees(ctx, cfg.sch, base, ours, theirs, cfg.alloc, merge.Options{
		Policy: cfg.merge,
		Diff:   cfg.diff,
	})
}

// MergeScripts three-way merges two already-computed edit scripts over the
// same base tree. Both scripts must be well-typed closed-to-closed and
// comply with base; fresh URIs the two scripts share are renamed apart.
// WithSchema is required; WithMergePolicy applies.
func MergeScripts(base *Node, ours, theirs *Script, opts ...Option) (*MergeResult, error) {
	cfg := newConfig(opts)
	if cfg.sch == nil {
		return nil, fmt.Errorf("structdiff: %w", ErrNoSchema)
	}
	return merge.Scripts(cfg.sch, base, ours, theirs, merge.Options{Policy: cfg.merge})
}

// ApplyMerge patches mt with the merged script and, if accept is non-nil,
// lets it validate the merged tree: on rejection the patch is rolled back
// exactly (Invert + the transactional patch) and the rejection error is
// returned wrapped. A nil accept commits unconditionally.
func ApplyMerge(mt *MTree, res *MergeResult, accept func(*MTree) error) error {
	return merge.Apply(mt, res, accept)
}
