package structdiff_test

import (
	"context"
	"testing"

	"repro/structdiff"
)

func TestExplainFacade(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	ex, err := structdiff.Explain(src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc),
		structdiff.WithQualityBaseline(structdiff.DefaultQualityBaselineMaxNodes))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Provenance == nil || len(ex.Provenance.Edits) != ex.Script.Len() {
		t.Fatalf("provenance misaligned: %v records for %d edits", ex.Provenance, ex.Script.Len())
	}
	for i, p := range ex.Provenance.Edits {
		if p.Op == "" || p.Reason == "" || p.Node == "" {
			t.Fatalf("record %d not populated: %+v", i, p)
		}
	}
	q := ex.Quality
	if q.ReuseRatio < 0 || q.ReuseRatio > 1 || q.CompoundEdits != ex.Script.EditCount() {
		t.Fatalf("quality metrics inconsistent: %+v", q)
	}
	if !q.Baselined || q.MinimalEdits <= 0 {
		t.Fatalf("60-node pair under the default cap must be baselined: %+v", q)
	}

	// The explained diff emits exactly the script a plain diff emits.
	src2, dst2, sch2, alloc2 := buildPair(t)
	plain, err := structdiff.Diff(src2, dst2, structdiff.WithSchema(sch2), structdiff.WithAllocator(alloc2))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if plain.Script.String() != ex.Script.String() {
		t.Fatal("Explain changed the emitted script")
	}
}

func TestExplainFacadeNoBaselineByDefault(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	ex, err := structdiff.ExplainContext(context.Background(), src, dst,
		structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatalf("ExplainContext: %v", err)
	}
	if ex.Quality.Baselined {
		t.Fatalf("baseline ran without WithQualityBaseline: %+v", ex.Quality)
	}
	if ex.Quality.ReuseRatio <= 0 {
		t.Fatalf("ratios must be computed regardless: %+v", ex.Quality)
	}
}

func TestExplainFacadeRequiresSchema(t *testing.T) {
	src, dst, _, _ := buildPair(t)
	if _, err := structdiff.Explain(src, dst); err == nil {
		t.Fatal("Explain without a schema must fail")
	}
}

func TestEngineExplainOptions(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	e, err := structdiff.NewEngine(sch,
		structdiff.WithExplain(),
		structdiff.WithQualityBaseline(structdiff.DefaultQualityBaselineMaxNodes))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	results, err := e.DiffBatch(context.Background(), []structdiff.Pair{
		{Source: src, Target: dst, Alloc: alloc, Label: "facade"},
	})
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	pr := results[0]
	if pr.Err != nil {
		t.Fatal(pr.Err)
	}
	if pr.Explain == nil || len(pr.Explain.Edits) != pr.Result.Script.Len() {
		t.Fatalf("engine result lacks aligned provenance: %+v", pr.Explain)
	}
	if !pr.Stats.Baselined || pr.Stats.MinimalEdits <= 0 {
		t.Fatalf("engine result lacks baseline stats: %+v", pr.Stats)
	}
}

func TestMeasureQuality(t *testing.T) {
	src, dst, sch, alloc := buildPair(t)
	res, err := structdiff.Diff(src, dst, structdiff.WithSchema(sch), structdiff.WithAllocator(alloc))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	q := structdiff.MeasureQuality(src, dst, res.Script, 0)
	if q.CompoundEdits != res.Script.EditCount() || !q.Baselined {
		t.Fatalf("MeasureQuality: %+v", q)
	}
	if q2 := structdiff.MeasureQuality(src, dst, res.Script, -1); q2.Baselined {
		t.Fatalf("negative cap must disable the baseline: %+v", q2)
	}
}
