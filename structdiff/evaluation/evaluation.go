// Package evaluation exposes the paper's evaluation harness (§6):
// conciseness and throughput comparisons against the Gumtree and hdiff
// baselines (Figs. 4 and 5), the incremental-analysis case study, scaling
// and ablation studies, and the engine replay that measures the batch
// engine against sequential diffing. It is the public face of
// internal/evaluation.
package evaluation

import (
	"repro/internal/corpus"
	"repro/internal/evaluation"
	"repro/structdiff"
)

type (
	// Config configures a corpus run; Runner executes it; FileResult is
	// the per-file-change measurement.
	Config     = evaluation.Config
	Runner     = evaluation.Runner
	FileResult = evaluation.FileResult
	// Conciseness and Throughput aggregate FileResults like the paper's
	// Figs. 4 and 5.
	Conciseness = evaluation.Conciseness
	Throughput  = evaluation.Throughput
	// IncAConfig and IncAResult drive the incremental-analysis case study.
	IncAConfig = evaluation.IncAConfig
	IncAResult = evaluation.IncAResult
	// ScalingPoint and AblationResult carry the scaling and ablation
	// studies; MatchingResult the external-matching comparison.
	ScalingPoint   = evaluation.ScalingPoint
	AblationResult = evaluation.AblationResult
	MatchingResult = evaluation.MatchingResult
	// EngineReplayResult compares batch-engine against sequential
	// diffing over a corpus replay.
	EngineReplayResult = evaluation.EngineReplayResult
)

// DefaultConfig mirrors the evaluation setup of the paper.
func DefaultConfig() Config { return evaluation.DefaultConfig() }

// NewRunner prepares a corpus run.
func NewRunner(cfg Config) *Runner { return evaluation.NewRunner(cfg) }

// Fig4 aggregates conciseness; Fig5 aggregates throughput.
func Fig4(results []FileResult) Conciseness { return evaluation.Fig4(results) }
func Fig5(results []FileResult) Throughput  { return evaluation.Fig5(results) }

// DefaultIncAConfig mirrors the case-study setup; RunIncA executes it.
func DefaultIncAConfig() IncAConfig      { return evaluation.DefaultIncAConfig() }
func RunIncA(cfg IncAConfig) *IncAResult { return evaluation.RunIncA(cfg) }

// RunScaling diffs synthetic trees of growing size; ScalingReport renders
// the result table.
func RunScaling(sizes []int, editsPerTree int) []ScalingPoint {
	return evaluation.RunScaling(sizes, editsPerTree)
}
func ScalingReport(points []ScalingPoint) string { return evaluation.ScalingReport(points) }

// RunAblations compares algorithm variants; AblationReport renders them.
func RunAblations(opts corpus.Options) []AblationResult { return evaluation.RunAblations(opts) }
func AblationReport(results []AblationResult) string    { return evaluation.AblationReport(results) }

// RunMatching compares truediff's own assignment against scripts realized
// from Gumtree's similarity matching (the paper's §7 outlook).
func RunMatching(opts corpus.Options) *MatchingResult { return evaluation.RunMatching(opts) }

// RunEngineReplay replays a corpus through the batch engine and through
// plain sequential diffing, verifying the scripts agree and measuring the
// speedup and cache effectiveness.
func RunEngineReplay(cfg Config, workers int) *EngineReplayResult {
	return evaluation.RunEngineReplay(cfg, workers)
}

// RunEngineReplayOn is RunEngineReplay over a caller-supplied engine (any
// engine over a pylang schema), so observers, tracers, and a live metrics
// endpoint wired to that engine see the replay. The result's Snapshot is
// the engine's per-replay delta (Snapshot.Sub of after and before).
func RunEngineReplayOn(e *structdiff.Engine, cfg Config) *EngineReplayResult {
	return evaluation.RunEngineReplayOn(e, cfg)
}
