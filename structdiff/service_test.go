package structdiff_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/structdiff"
)

// Compile-time assertions live in service.go; this test proves the two
// DiffService implementations are interchangeable at runtime: the same
// generic routine runs against the in-process engine and the HTTP client
// and produces scripts of equal size.
func TestDiffServiceImplementations(t *testing.T) {
	src, dst, sch, _ := buildPair(t)

	runThrough := func(t *testing.T, svc structdiff.DiffService) int {
		t.Helper()
		defer svc.Close()
		res, err := svc.Diff(context.Background(), src, dst, nil)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		batch, err := svc.DiffBatch(context.Background(), []structdiff.Pair{
			{Source: src, Target: dst, Label: "svc-test"},
		})
		if err != nil {
			t.Fatalf("DiffBatch: %v", err)
		}
		if batch[0].Err != nil {
			t.Fatalf("batch pair: %v", batch[0].Err)
		}
		if got, want := batch[0].Result.Script.EditCount(), res.Script.EditCount(); got != want {
			t.Errorf("batch produced %d edits, single diff %d", got, want)
		}
		if s := svc.Snapshot(); s.Diffs == 0 {
			t.Error("snapshot shows no diffs after two calls")
		}
		return res.Script.EditCount()
	}

	var viaEngine, viaService int
	t.Run("engine", func(t *testing.T) {
		eng, err := structdiff.NewEngine(sch)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		viaEngine = runThrough(t, eng)
	})
	t.Run("client", func(t *testing.T) {
		srv, err := structdiff.NewServiceServer(structdiff.ServiceConfig{Langs: []string{"exp"}, Workers: 2})
		if err != nil {
			t.Fatalf("NewServiceServer: %v", err)
		}
		hs := httptest.NewServer(srv)
		defer hs.Close()
		defer srv.Drain(context.Background())
		viaService = runThrough(t, structdiff.NewServiceClient(hs.URL, "exp", sch))
	})
	if viaEngine != viaService {
		t.Errorf("engine produced %d edits, service %d", viaEngine, viaService)
	}
}
