// Package gumtree exposes the Gumtree baseline differ the evaluation
// compares against (Falleri et al. 2014): top-down/bottom-up similarity
// matching over rose trees and a classic insert/delete/update/move edit
// script. Its MatchTyped bridge feeds structdiff.DiffWithMatching. It is
// the public face of internal/gumtree.
package gumtree

import (
	"repro/internal/gumtree"
	"repro/internal/tree"
)

type (
	// Node is Gumtree's untyped rose tree; Mapping a node matching;
	// Script the classic edit script made of Actions.
	Node       = gumtree.Node
	Mapping    = gumtree.Mapping
	Script     = gumtree.Script
	Action     = gumtree.Action
	ActionKind = gumtree.ActionKind
	// Options tunes the matcher; TypedPair is a matched pair of
	// structdiff tree nodes (see MatchTyped).
	Options   = gumtree.Options
	TypedPair = gumtree.TypedPair
)

const (
	Insert      = gumtree.Insert
	Delete      = gumtree.Delete
	Move        = gumtree.Move
	UpdateLabel = gumtree.UpdateLabel
)

// DefaultOptions mirrors the published Gumtree parameters.
func DefaultOptions() Options { return gumtree.DefaultOptions() }

// New builds a rose-tree node; FromTree converts a structdiff tree.
func New(typ, label string, children ...*Node) *Node { return gumtree.New(typ, label, children...) }
func FromTree(t *tree.Node) *Node                    { return gumtree.FromTree(t) }

// Diff matches the trees and derives the classic edit script.
func Diff(src, dst *Node, opts Options) (*Script, *Mapping) { return gumtree.Diff(src, dst, opts) }

// Match computes the similarity mapping without deriving a script.
func Match(src, dst *Node, opts Options) *Mapping { return gumtree.Match(src, dst, opts) }

// MatchTyped runs the Gumtree matcher on structdiff trees and returns the
// matched node pairs, ready for structdiff.DiffWithMatching.
func MatchTyped(src, dst *tree.Node, opts Options) []TypedPair {
	return gumtree.MatchTyped(src, dst, opts)
}
