// Package hdiff exposes the hdiff baseline differ the evaluation compares
// against (Miraldo and Swierstra 2019): hash-consed pattern/expression
// patches over typed trees. It is the public face of internal/hdiff.
package hdiff

import (
	"repro/internal/hdiff"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

type (
	// Patch is an hdiff change: a deletion context and an insertion
	// context over shared metavariables; PTree is its pattern tree.
	Patch = hdiff.Patch
	PTree = hdiff.PTree
	// Options tunes sharing.
	Options = hdiff.Options
)

// DefaultOptions mirrors the published hdiff parameters.
func DefaultOptions() Options { return hdiff.DefaultOptions() }

// Diff computes an hdiff patch between typed trees.
func Diff(src, dst *tree.Node, opts Options) *Patch { return hdiff.Diff(src, dst, opts) }

// Apply applies a patch to a tree.
func Apply(p *Patch, src *tree.Node, sch *sig.Schema, alloc *uri.Allocator) (*tree.Node, error) {
	return hdiff.Apply(p, src, sch, alloc)
}
