// Package analysis exposes the incremental program analysis stack of the
// paper's case study (§6.3): a semi-naive Datalog engine with support for
// incremental fact retraction, and the IncA-style driver that feeds tree
// facts to it and maintains them under truechange edit scripts. It is the
// public face of internal/inca and internal/datalog.
package analysis

import (
	"repro/internal/datalog"
	"repro/internal/inca"
	"repro/internal/sig"
)

// --- Datalog (internal/datalog) -----------------------------------------

type (
	// Engine evaluates Rules semi-naively; Delta batches fact insertions
	// and retractions; Atom, Tuple, and Var form the rule language.
	Engine = datalog.Engine
	Rule   = datalog.Rule
	Atom   = datalog.Atom
	Tuple  = datalog.Tuple
	Var    = datalog.Var
	Delta  = datalog.Delta
)

// NewEngine compiles the rules; A builds an atom; NewDelta an empty batch.
func NewEngine(rules []Rule) (*Engine, error) { return datalog.NewEngine(rules) }
func A(pred string, args ...any) Atom         { return datalog.A(pred, args...) }
func NewDelta() *Delta                        { return datalog.NewDelta() }

// --- IncA driver (internal/inca) ----------------------------------------

type (
	// Driver maintains tree facts under edit scripts; LinkIndex abstracts
	// the parent-child fact index (OneToOne, ManyToOne).
	Driver    = inca.Driver
	LinkIndex = inca.LinkIndex
	OneToOne  = inca.OneToOne
	ManyToOne = inca.ManyToOne
)

// Predicate names of the tree facts the driver maintains.
const (
	PredNode = inca.PredNode
	PredLit  = inca.PredLit
)

// NewDriver builds a driver for the schema over the given rules and index.
func NewDriver(sch *sig.Schema, rules []Rule, index LinkIndex) (*Driver, error) {
	return inca.NewDriver(sch, rules, index)
}

// NewOneToOne and NewManyToOne build the standard link indexes.
func NewOneToOne() *OneToOne   { return inca.NewOneToOne() }
func NewManyToOne() *ManyToOne { return inca.NewManyToOne() }

// StandardRules returns the case study's analysis rules; ClosureRules the
// transitive-closure helper rules.
func StandardRules() []Rule { return inca.StandardRules() }
func ClosureRules() []Rule  { return inca.ClosureRules() }
